"""Experiment orchestration: one function per (application, configuration).

``run_configuration`` stands up the full testbed — network, database,
application servers, client population — runs it for the configured
simulated duration, and returns the response-time monitor plus the
deployed system for inspection.  ``run_series`` sweeps all five pattern
levels, which is exactly the data behind Tables 6/7 and Figures 7/8.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from ..apps import petstore, rubis
from ..core.distribution import DeployedSystem, distribute
from ..core.patterns import PAPER_LEVELS, PatternLevel
from ..core.policy import PlacementPolicy
from ..faults.injector import FaultInjector
from ..faults.report import collect_resilience
from ..faults.schedule import FaultSchedule
from ..obs.metrics import MetricsRegistry, collect_cache_stats, collect_system_metrics
from ..obs.spans import SpanRecorder
from ..obs.timeseries import TimeSeriesRecorder
from ..simnet.kernel import Environment
from ..simnet.monitor import ResponseTimeMonitor, Trace
from ..simnet.topology import TestbedConfig, TopologyOverrides, build_testbed
from ..core.usage import WeightedPattern
from ..workload.generator import LoadGenerator, WorkloadConfig
from ..workload.openloop import OpenLoopConfig, OpenLoopGenerator, TransitionMatrixPattern
from . import calibration

__all__ = ["AppSpec", "APPS", "ExperimentResult", "run_configuration", "run_series"]


@dataclass(frozen=True)
class AppSpec:
    """Everything the runner needs to know about one application."""

    name: str
    build_application: Callable
    populate: Callable
    browser_pattern: Callable
    writer_pattern: Callable
    writer_group: str
    costs: object
    db_costs: object
    testbed_config: Callable
    browser_pages: tuple
    writer_pages: tuple
    # catalog -> {query_id: [param tuples]} used to pre-warm query caches.
    warm_queries: Optional[Callable] = None


APPS: Dict[str, AppSpec] = {
    "petstore": AppSpec(
        name="petstore",
        build_application=petstore.build_application,
        populate=petstore.populate_petstore,
        browser_pattern=petstore.browser_pattern,
        writer_pattern=petstore.buyer_pattern,
        writer_group="buyer",
        costs=calibration.PETSTORE_COSTS,
        db_costs=calibration.PETSTORE_DB_COSTS,
        testbed_config=calibration.petstore_testbed_config,
        browser_pages=tuple(petstore.BROWSER_PAGES),
        writer_pages=tuple(petstore.BUYER_PAGES),
        warm_queries=lambda catalog: {
            "petstore.products_of_category": [(c,) for c in catalog.category_ids],
            "petstore.items_of_product": [(p,) for p in catalog.product_ids],
        },
    ),
    "rubis": AppSpec(
        name="rubis",
        build_application=rubis.build_application,
        populate=rubis.populate_rubis,
        browser_pattern=rubis.browser_pattern,
        writer_pattern=rubis.bidder_pattern,
        writer_group="bidder",
        costs=calibration.RUBIS_COSTS,
        db_costs=calibration.RUBIS_DB_COSTS,
        testbed_config=calibration.rubis_testbed_config,
        browser_pages=tuple(rubis.BROWSER_PAGES),
        writer_pages=tuple(rubis.BIDDER_PAGES),
        warm_queries=lambda catalog: {
            "rubis.all_categories": [()],
            "rubis.all_regions": [()],
            "rubis.items_in_category": [(c,) for c in catalog.category_ids],
            "rubis.items_in_category_region": [
                (c, r) for c in catalog.category_ids for r in catalog.region_ids
            ],
            "rubis.bid_history": [(i,) for i in catalog.item_ids],
            "rubis.user_comments": [(u,) for u in catalog.user_ids],
        },
    ),
}


@dataclass
class ExperimentResult:
    """Outcome of one configuration run."""

    app: str
    level: PatternLevel
    monitor: ResponseTimeMonitor
    system: DeployedSystem
    # LoadGenerator (closed loop) or OpenLoopGenerator (open loop); both
    # expose the reporting surface the tables and artifacts consume.
    generator: object
    wall_seconds: float
    # CPU seconds over the same region as ``wall_seconds``; benchmarks
    # gate on this because it is immune to scheduler-preemption noise on
    # busy hosts (a big effect on 1-CPU CI runners).
    cpu_seconds: float = 0.0
    trace: Optional[Trace] = None
    spans: Optional[SpanRecorder] = None
    metrics: Optional[MetricsRegistry] = None
    # Windowed telemetry (None unless an obs interval was requested).
    series: Optional[TimeSeriesRecorder] = None
    # Query-cache and replica counters, collected before the system is
    # dropped — previously this evidence died with the run.
    cache_stats: Optional[dict] = None
    # Canonical resilience snapshot (all-zero in fault-free runs) and the
    # injector that produced it (None when no schedule was installed).
    resilience: Optional[dict] = None
    fault_injector: Optional[FaultInjector] = None
    # Row label for tables/figures (a custom policy's name; None for the
    # canned configurations, which label themselves by level).
    label: Optional[str] = None
    # Effective topology of the run (edge count, WAN latency, client
    # groups) for results/metrics artifacts.
    topology: Optional[dict] = None

    def mean(self, group: str, page: str) -> float:
        return self.monitor.mean(group, page)

    def session_mean(self, group: str) -> float:
        return self.monitor.session_mean(group)

    def groups(self) -> List[str]:
        return self.monitor.groups()

    @property
    def spans_state(self) -> Optional[dict]:
        """Picklable span-table snapshot (None when tracing was off)."""
        return self.spans.to_state() if self.spans is not None else None

    @property
    def metrics_state(self) -> Optional[dict]:
        """Picklable metrics snapshot (None when metrics were off)."""
        return self.metrics.to_state() if self.metrics is not None else None

    @property
    def series_state(self) -> Optional[dict]:
        """Picklable time-series snapshot (None when telemetry was off)."""
        return self.series.to_state() if self.series is not None else None

    @property
    def trace_summary(self):
        """Trace digest with resilience counters folded in (None without trace)."""
        if self.trace is None:
            return None
        snapshot = self.resilience or {}
        summary = replace(
            self.trace.summary(),
            retries=snapshot.get("rmi_retries", 0),
            timeouts=snapshot.get("rmi_timeouts", 0),
            failovers=snapshot.get("failovers", 0),
            dropped_updates=snapshot.get("dropped_updates", 0),
            dropped_sessions=snapshot.get("dropped_sessions", 0),
        )
        if self.spans is not None and self.spans.sample_rate < 1.0:
            summary = replace(
                summary,
                span_sample_rate=self.spans.sample_rate,
                spans_sampled=self.spans.sampled_requests,
                spans_skipped=self.spans.skipped_requests,
            )
        return summary


def topology_dict(config: TestbedConfig) -> dict:
    """The artifact-facing summary of a testbed config."""
    return {
        "edge_servers": config.edge_servers,
        "wan_latency_ms": config.wan_latency,
        "clients_per_group": config.clients_per_group,
    }


def run_configuration(
    app: str,
    level: PatternLevel,
    workload: Optional[WorkloadConfig] = None,
    seed: int = calibration.MASTER_SEED,
    with_trace: bool = False,
    with_spans: bool = False,
    with_metrics: bool = False,
    costs_override=None,
    sizes: Optional[dict] = None,
    warm_replicas: bool = True,
    faults: Optional[FaultSchedule] = None,
    policy: Optional[PlacementPolicy] = None,
    topology: Optional[TopologyOverrides] = None,
    openloop: Optional[OpenLoopConfig] = None,
    browser_pattern=None,
    obs_interval_ms: Optional[float] = None,
    obs_sample: float = 1.0,
) -> ExperimentResult:
    """Run one (application, configuration) cell of the evaluation.

    The configuration is a pattern ``level`` (compiled to its canned
    policy) or, when ``policy`` is given, an explicit
    :class:`PlacementPolicy` — ``level`` is then ignored and the
    policy's metadata level picks the application era.  ``topology``
    optionally overrides the app's calibrated testbed knobs.

    ``openloop`` swaps the closed-loop client population for the
    open-loop arrival engine (:mod:`repro.workload.openloop`); the
    closed-loop ``workload`` config is then ignored.  Browser sessions
    become per-session Markov walks over the app's weighted page mix.
    ``browser_pattern`` optionally replaces the app's stock browse mix:
    a callable taking the populated catalog and returning a usage
    pattern, exactly like :attr:`AppSpec.browser_pattern`.

    ``obs_interval_ms`` turns on windowed telemetry: a kernel sampler
    process snapshots counters/gauges every interval and the generator
    streams response times into per-window histograms (see
    :mod:`repro.obs.timeseries`).  ``obs_sample`` keeps only that
    deterministic fraction of sessions in the span table (hash of the
    session id, not RNG) so tracing stays bounded at 10^6 sessions.
    """
    from ..middleware.context import reset_ids
    from ..simnet.rng import Streams

    reset_ids()
    spec = APPS[app]
    if policy is not None:
        level = policy.effective_level()
    else:
        level = PatternLevel(level)
    workload = workload or calibration.default_workload()

    streams = Streams(seed)
    database, catalog = spec.populate(streams, sizes)
    env = Environment()
    config = spec.testbed_config()
    if topology is not None:
        config = topology.apply(config)
    testbed = build_testbed(env, config)
    trace = Trace(max_records=2_000_000) if with_trace else None
    spans = (
        SpanRecorder(max_spans=2_000_000, sample_rate=obs_sample)
        if with_spans
        else None
    )
    metrics = MetricsRegistry() if with_metrics else None
    application = spec.build_application(level, catalog=catalog)
    system = distribute(
        env,
        testbed,
        application,
        policy if policy is not None else level,
        database,
        costs=costs_override or spec.costs,
        db_cost_model=spec.db_costs,
        trace=trace,
        spans=spans,
        metrics=metrics,
        streams=streams,
    )
    if system.cluster is not None:
        # The raft heartbeat/election driver is horizon-bounded: the load
        # generators run the kernel to exhaustion, so an open-ended
        # driver would never let the simulation drain.
        horizon_ms = (
            openloop.duration_ms if openloop is not None else workload.duration_ms
        )
        system.cluster.start(horizon_ms)
    if warm_replicas:
        # Stand-in for the paper's measurement-excluded warm-up hour:
        # read-only replicas and query caches start hot.
        system.warm_replicas()
        if spec.warm_queries is not None:
            system.warm_query_caches(spec.warm_queries(catalog))
    injector = None
    if faults is not None and not faults.empty:
        # An empty schedule installs nothing at all — no kernel events,
        # no RNG draws — so fault-free runs stay byte-identical.
        injector = FaultInjector(faults, streams).install(env, system)
    browser_factory = browser_pattern or spec.browser_pattern
    if openloop is not None:
        browser = browser_factory(catalog)
        if isinstance(browser, WeightedPattern):
            browser = TransitionMatrixPattern(browser)
        generator = OpenLoopGenerator(
            system,
            streams,
            browser,
            spec.writer_pattern(catalog),
            config=openloop,
            writer_group_name=spec.writer_group,
        )
    else:
        generator = LoadGenerator(
            system,
            streams,
            browser_factory(catalog),
            spec.writer_pattern(catalog),
            config=workload,
            writer_group_name=spec.writer_group,
        )
    series = None
    if obs_interval_ms is not None:
        series = TimeSeriesRecorder(interval_ms=obs_interval_ms)
        generator.timeseries = series
        # Install after warm-up/fault setup so the sampler's baseline
        # snapshot excludes construction-time counter churn, and before
        # run() so window boundaries start at t=0.
        series.install(env, system, generator, faults=faults)
    started = time.perf_counter()
    cpu_started = time.process_time()
    monitor = generator.run(env)
    cpu = time.process_time() - cpu_started
    wall = time.perf_counter() - started
    # Close staleness windows before the metrics snapshot reads them.
    resilience = collect_resilience(system, generator=generator)
    if metrics is not None:
        collect_system_metrics(metrics, system, generator=generator)
    return ExperimentResult(
        app=app,
        level=level,
        monitor=monitor,
        system=system,
        generator=generator,
        wall_seconds=wall,
        cpu_seconds=cpu,
        trace=trace,
        spans=spans,
        metrics=metrics,
        series=series,
        cache_stats=collect_cache_stats(system),
        resilience=resilience,
        fault_injector=injector,
        label=policy.name if policy is not None else None,
        topology=topology_dict(config),
    )


def run_series(
    app: str,
    levels=None,
    workload: Optional[WorkloadConfig] = None,
    seed: int = calibration.MASTER_SEED,
    with_trace: bool = False,
    with_spans: bool = False,
    with_metrics: bool = False,
    jobs: Optional[int] = None,
    progress=None,
    profile: bool = False,
    faults: Optional[FaultSchedule] = None,
    policy: Optional[PlacementPolicy] = None,
    topology: Optional[TopologyOverrides] = None,
    openloop: Optional[OpenLoopConfig] = None,
    obs_interval_ms: Optional[float] = None,
    obs_sample: float = 1.0,
) -> Dict[PatternLevel, "ExperimentResult"]:
    """All five configurations of one application (Tables 6/7).

    ``jobs`` selects the execution strategy: ``None`` or ``1`` runs the
    cells serially in this process and returns full
    :class:`ExperimentResult` objects (live system, generator, trace);
    any other value fans the cells out across that many worker
    processes via :mod:`repro.experiments.parallel` and returns
    picklable :class:`~repro.experiments.parallel.CellResult` objects
    instead.  Both forms feed ``build_table`` / ``build_figure`` and
    produce byte-identical output for a given seed — cells are seeded
    independently, so results do not depend on who ran them or in what
    order they finished.

    ``profile=True`` runs each cell under cProfile and dumps the top-25
    cumulative entries plus a per-subsystem attribution to stderr (see
    :mod:`repro.experiments.profile`).  Results are unchanged — the
    profiler only costs wall-clock time.  Profiling is serial-only:
    ``jobs != 1`` is downgraded to serial with a stderr warning (results
    are identical either way; only the wall clock differs).
    """
    if policy is not None:
        levels = [policy.effective_level()]
    else:
        levels = [PatternLevel(level) for level in (levels or PAPER_LEVELS)]
    if jobs is not None and jobs != 1:
        if profile:
            from .profile import warn_forced_serial

            warn_forced_serial(jobs, sys.stderr)
            jobs = 1
        else:
            from .parallel import run_series_parallel

            return run_series_parallel(
                app,
                levels=levels,
                workload=workload,
                seed=seed,
                with_trace=with_trace,
                with_spans=with_spans,
                with_metrics=with_metrics,
                jobs=jobs,
                progress=progress,
                faults=faults,
                policy=policy,
                topology=topology,
                openloop=openloop,
                obs_interval_ms=obs_interval_ms,
                obs_sample=obs_sample,
            )
    results: Dict[PatternLevel, ExperimentResult] = {}
    for level in levels:
        if profile:
            from .profile import dump_cell_profile, profile_call

            result, stats = profile_call(
                run_configuration,
                app,
                level,
                workload=workload,
                seed=seed,
                with_trace=with_trace,
                with_spans=with_spans,
                with_metrics=with_metrics,
                faults=faults,
                policy=policy,
                topology=topology,
                openloop=openloop,
                obs_interval_ms=obs_interval_ms,
                obs_sample=obs_sample,
            )
            dump_cell_profile(f"{app} L{int(level)}", stats, sys.stderr)
        else:
            result = run_configuration(
                app,
                level,
                workload=workload,
                seed=seed,
                with_trace=with_trace,
                with_spans=with_spans,
                with_metrics=with_metrics,
                faults=faults,
                policy=policy,
                topology=topology,
                openloop=openloop,
                obs_interval_ms=obs_interval_ms,
                obs_sample=obs_sample,
            )
        results[level] = result
        if progress is not None:
            progress.cell_done(app, level, result.wall_seconds)
    return results
