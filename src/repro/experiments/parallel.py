"""Parallel experiment execution: a process-pool fan-out over cells.

The paper's evaluation grid is a set of independent *cells* — one
(application, :class:`PatternLevel`) pair each.  RAFDA-style separation
of application logic from distribution policy means a cell shares no
state with any other: every run builds its own seeded
:class:`~repro.simnet.kernel.Environment`, database, testbed and client
population from scratch.  That makes the sweep embarrassingly parallel,
and this module exploits it:

* each cell runs in its own worker process (``ProcessPoolExecutor``);
* the worker ships back a picklable :class:`CellResult` — serialized
  monitor state, a trace summary, and wall time — never live simulation
  objects;
* the parent merges results in canonical (app, level) order, so tables
  and figures are **byte-identical for any worker count and any
  completion order**.

Determinism rests on two facts: every cell is seeded independently from
the same master seed (so a cell's observations do not depend on which
process ran it), and :meth:`ResponseTimeMonitor.to_state` emits cells in
sorted order (so reconstruction does not depend on arrival order).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.patterns import PAPER_LEVELS, PatternLevel
from ..core.policy import PlacementPolicy
from ..faults.schedule import FaultSchedule
from ..simnet.monitor import ResponseTimeMonitor, TraceSummary
from ..simnet.topology import TopologyOverrides
from ..workload.generator import WorkloadConfig
from ..workload.openloop import OpenLoopConfig
from . import calibration
from .progress import ProgressReporter

__all__ = [
    "CellTask",
    "CellResult",
    "default_jobs",
    "run_cells",
    "run_series_parallel",
]


def default_jobs() -> int:
    """Worker-count default: one per CPU."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class CellTask:
    """Everything a worker needs to run one cell.  Strictly picklable:
    the application itself is looked up by name inside the worker."""

    app: str
    level: int
    workload: Optional[WorkloadConfig]
    seed: int
    with_trace: bool = False
    with_spans: bool = False
    with_metrics: bool = False
    # Fault schedule (frozen dataclasses of tuples — picklable); None or
    # an empty schedule leaves the run untouched.
    faults: Optional[FaultSchedule] = None
    # Explicit placement policy (frozen, picklable); None runs the canned
    # configuration for ``level``.
    policy: Optional[PlacementPolicy] = None
    # Testbed overrides (frozen, picklable); None keeps the app's
    # calibrated topology.
    topology: Optional[TopologyOverrides] = None
    # Open-loop workload (frozen, picklable); None runs the closed-loop
    # client population described by ``workload``.
    openloop: Optional[OpenLoopConfig] = None
    # Windowed-telemetry interval in simulated ms; None leaves the
    # sampler uninstalled (no extra kernel events at all).
    obs_interval: Optional[float] = None
    # Deterministic span-sampling rate (see SpanRecorder.sample).
    obs_sample: float = 1.0


@dataclass
class CellResult:
    """Picklable outcome of one cell.

    Carries serialized monitor state instead of live simulation objects,
    plus enough derived data (request count, trace summary, wall time)
    for the tables, figures and benchmark reports.  Presents the same
    reporting surface as :class:`~repro.experiments.runner.ExperimentResult`
    (``app`` / ``level`` / ``monitor`` / ``mean`` / ``session_mean`` /
    ``groups``), so ``build_table`` and ``build_figure`` accept either.
    """

    app: str
    level: PatternLevel
    monitor_state: dict
    wall_seconds: float
    total_requests: int
    trace_summary: Optional[TraceSummary] = None
    # Observability snapshots (plain dicts, canonical key order): the
    # span table, the metrics registry, and the query-cache/replica
    # counters that previously died with the worker process.
    spans_state: Optional[dict] = None
    metrics_state: Optional[dict] = None
    series_state: Optional[dict] = None
    cache_stats: Optional[dict] = None
    # Canonical resilience snapshot (see repro.faults.report).
    resilience: Optional[dict] = None
    # Custom-policy row label and effective topology (see ExperimentResult).
    label: Optional[str] = None
    topology: Optional[dict] = None
    _monitor: Optional[ResponseTimeMonitor] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_experiment(cls, result) -> "CellResult":
        """Condense a live ``ExperimentResult`` into its picklable form."""
        return cls(
            app=result.app,
            level=PatternLevel(result.level),
            monitor_state=result.monitor.to_state(),
            wall_seconds=result.wall_seconds,
            total_requests=result.generator.total_requests(),
            trace_summary=result.trace_summary,
            spans_state=result.spans_state,
            metrics_state=result.metrics_state,
            series_state=result.series_state,
            cache_stats=result.cache_stats,
            resilience=result.resilience,
            label=result.label,
            topology=result.topology,
        )

    @property
    def monitor(self) -> ResponseTimeMonitor:
        """The reconstructed response-time monitor (cached)."""
        if self._monitor is None:
            self._monitor = ResponseTimeMonitor.from_state(self.monitor_state)
        return self._monitor

    def mean(self, group: str, page: str) -> float:
        return self.monitor.mean(group, page)

    def session_mean(self, group: str) -> float:
        return self.monitor.session_mean(group)

    def groups(self) -> List[str]:
        return self.monitor.groups()


def _run_cell(task: CellTask) -> CellResult:
    """Worker entry point: run one cell and serialize the outcome."""
    from .runner import run_configuration

    result = run_configuration(
        task.app,
        PatternLevel(task.level),
        workload=task.workload,
        seed=task.seed,
        with_trace=task.with_trace,
        with_spans=task.with_spans,
        with_metrics=task.with_metrics,
        faults=task.faults,
        policy=task.policy,
        topology=task.topology,
        openloop=task.openloop,
        obs_interval_ms=task.obs_interval,
        obs_sample=task.obs_sample,
    )
    return CellResult.from_experiment(result)


def run_cells(
    cells: Iterable[Tuple[str, PatternLevel]],
    workload: Optional[WorkloadConfig] = None,
    seed: int = calibration.MASTER_SEED,
    with_trace: bool = False,
    with_spans: bool = False,
    with_metrics: bool = False,
    jobs: Optional[int] = None,
    progress: Optional[ProgressReporter] = None,
    faults: Optional[FaultSchedule] = None,
    policy: Optional[PlacementPolicy] = None,
    topology: Optional[TopologyOverrides] = None,
    openloop: Optional[OpenLoopConfig] = None,
    obs_interval_ms: Optional[float] = None,
    obs_sample: float = 1.0,
) -> Dict[Tuple[str, PatternLevel], CellResult]:
    """Run every (app, level) cell, fanning out across ``jobs`` processes.

    ``jobs=None`` uses one worker per CPU; ``jobs=1`` runs the cells in
    the current process (no pool, no pickling overhead) but still
    returns :class:`CellResult`, so downstream output is identical.
    The returned dict is keyed in sorted (app, level) order regardless
    of completion order.
    """
    keys = [(app, PatternLevel(level)) for app, level in cells]
    if len(set(keys)) != len(keys):
        raise ValueError(f"duplicate cells in {keys!r}")
    tasks = {
        key: CellTask(
            key[0],
            int(key[1]),
            workload,
            seed,
            with_trace,
            with_spans,
            with_metrics,
            faults=faults,
            policy=policy,
            topology=topology,
            openloop=openloop,
            obs_interval=obs_interval_ms,
            obs_sample=obs_sample,
        )
        for key in keys
    }
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    results: Dict[Tuple[str, PatternLevel], CellResult] = {}
    if jobs == 1 or len(tasks) <= 1:
        for key, task in tasks.items():
            results[key] = _run_cell(task)
            if progress is not None:
                progress.cell_done(key[0], key[1], results[key].wall_seconds)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
            futures = {pool.submit(_run_cell, task): key for key, task in tasks.items()}
            for future in as_completed(futures):
                key = futures[future]
                results[key] = future.result()
                if progress is not None:
                    progress.cell_done(key[0], key[1], results[key].wall_seconds)
    return {
        key: results[key]
        for key in sorted(results, key=lambda k: (k[0], int(k[1])))
    }


def run_series_parallel(
    app: str,
    levels=None,
    workload: Optional[WorkloadConfig] = None,
    seed: int = calibration.MASTER_SEED,
    with_trace: bool = False,
    with_spans: bool = False,
    with_metrics: bool = False,
    jobs: Optional[int] = None,
    progress: Optional[ProgressReporter] = None,
    faults: Optional[FaultSchedule] = None,
    policy: Optional[PlacementPolicy] = None,
    topology: Optional[TopologyOverrides] = None,
    openloop: Optional[OpenLoopConfig] = None,
    obs_interval_ms: Optional[float] = None,
    obs_sample: float = 1.0,
) -> Dict[PatternLevel, CellResult]:
    """Parallel counterpart of :func:`~repro.experiments.runner.run_series`.

    Same grid, same seeds, same output — only the wall clock differs.
    """
    if policy is not None:
        levels = [policy.effective_level()]
    else:
        levels = [PatternLevel(level) for level in (levels or PAPER_LEVELS)]
    results = run_cells(
        [(app, level) for level in levels],
        workload=workload,
        seed=seed,
        with_trace=with_trace,
        with_spans=with_spans,
        with_metrics=with_metrics,
        jobs=jobs,
        progress=progress,
        faults=faults,
        policy=policy,
        topology=topology,
        openloop=openloop,
        obs_interval_ms=obs_interval_ms,
        obs_sample=obs_sample,
    )
    return {level: results[(app, level)] for level in levels}
