"""Benchmark: regenerate Figure 7 — Pet Store session-average bars."""

from __future__ import annotations

import pytest

# Full-fidelity sweep: minutes of wall clock.  Excluded from the CI
# smoke job (`-m "not slow"`).
pytestmark = pytest.mark.slow

from repro.core.patterns import PatternLevel
from repro.experiments.figures import build_figure, render_figure


def test_figure7_petstore(benchmark, petstore_series):
    figure = benchmark.pedantic(
        build_figure, args=(petstore_series,), rounds=3, iterations=1
    )
    print()
    print(render_figure(figure))

    L = PatternLevel
    remote_browser = {level: figure.value("remote-browser", level) for level in L}
    remote_buyer = {level: figure.value("remote-buyer", level) for level in L}
    local_buyer = {level: figure.value("local-buyer", level) for level in L}

    # Remote browsers improve at every step of the read-path pipeline.
    assert remote_browser[L.REMOTE_FACADE] < remote_browser[L.CENTRALIZED]
    assert remote_browser[L.STATEFUL_CACHING] < remote_browser[L.REMOTE_FACADE]
    assert remote_browser[L.QUERY_CACHING] < remote_browser[L.STATEFUL_CACHING]
    # By the end they are "almost completely insulated from wide-area effects".
    assert (
        figure.value("remote-browser", L.ASYNC_UPDATES)
        < figure.value("local-browser", L.CENTRALIZED) + 60.0
    )

    # Buyers: the blocking-push configurations are their worst ones, and
    # asynchronous updates recover the façade-level latency.
    assert local_buyer[L.STATEFUL_CACHING] > local_buyer[L.REMOTE_FACADE]
    assert local_buyer[L.ASYNC_UPDATES] < local_buyer[L.STATEFUL_CACHING]
    assert remote_buyer[L.ASYNC_UPDATES] < remote_buyer[L.CENTRALIZED]

    # The final configuration achieves the best overall performance (§4.6).
    overall = {
        level: sum(figure.value(group, level) for group in figure.groups)
        for level in L
    }
    assert overall[L.ASYNC_UPDATES] == min(overall.values())
