"""Measure the parallel experiment runner: serial vs process-pool wall clock.

Runs the full two-app, five-level sweep (the data behind Tables 6/7 and
Figures 7/8) once serially and once through the worker pool, verifies
the rendered tables are byte-identical, and writes the measurements to
``BENCH_parallel_runner.json`` in the repository root.

Because per-cell wall times vary widely (Pet Store centralized is ~10x
RUBiS async), the report also includes an LPT (longest-processing-time)
packing projection of the measured per-cell walls onto 2/4/8 workers —
the expected makespan on machines with more cores than the one that ran
this script.

Run:  python benchmarks/bench_parallel_runner.py [--duration 150] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.patterns import PAPER_LEVELS, PatternLevel
from repro.experiments.calibration import default_workload
from repro.experiments.parallel import default_jobs, run_cells
from repro.experiments.progress import ProgressReporter
from repro.experiments.tables import build_table, render_table


def lpt_makespan(walls, workers):
    """Longest-processing-time-first packing: projected pool makespan."""
    loads = [0.0] * workers
    for wall in sorted(walls, reverse=True):
        loads[loads.index(min(loads))] += wall
    return max(loads)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=150.0,
                        help="simulated seconds per cell (default %(default)s)")
    parser.add_argument("--warmup", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--jobs", type=int, default=None,
                        help="pool size for the parallel pass (default: CPUs)")
    parser.add_argument("--output", default="BENCH_parallel_runner.json")
    args = parser.parse_args()
    jobs = default_jobs() if args.jobs is None else max(1, args.jobs)
    workload = default_workload(args.duration * 1000.0, args.warmup * 1000.0)
    cells = [(app, level) for app in ("petstore", "rubis") for level in PAPER_LEVELS]

    print(f"[1/2] serial sweep: {len(cells)} cells ...", file=sys.stderr)
    started = time.perf_counter()
    serial = run_cells(
        cells, workload=workload, seed=args.seed, jobs=1,
        progress=ProgressReporter(len(cells), label="serial"),
    )
    serial_wall = time.perf_counter() - started

    print(f"[2/2] parallel sweep: {jobs} worker(s) ...", file=sys.stderr)
    started = time.perf_counter()
    parallel = run_cells(
        cells, workload=workload, seed=args.seed, jobs=jobs,
        progress=ProgressReporter(len(cells), label="parallel"),
    )
    parallel_wall = time.perf_counter() - started

    identical = True
    for app in ("petstore", "rubis"):
        serial_series = {lvl: serial[(app, lvl)] for lvl in PAPER_LEVELS}
        parallel_series = {lvl: parallel[(app, lvl)] for lvl in PAPER_LEVELS}
        if render_table(build_table(serial_series)) != render_table(
            build_table(parallel_series)
        ):
            identical = False

    cell_walls = {f"{app}:{int(lvl)}": round(r.wall_seconds, 3)
                  for (app, lvl), r in serial.items()}
    report = {
        "benchmark": "parallel experiment runner (two-app five-level sweep)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "simulated_seconds_per_cell": args.duration,
        "cells": len(cells),
        "jobs": jobs,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 3),
        "tables_byte_identical": identical,
        "per_cell_wall_seconds_serial": cell_walls,
        "projected_pool_makespan_seconds": {
            str(w): round(lpt_makespan(cell_walls.values(), w), 3)
            for w in (2, 4, 8)
        },
    }
    # Honest-comparison conditions, as data a dashboard can branch on
    # rather than a prose note a human has to parse.  When the pool is
    # oversubscribed the measured speedup is not meaningful; use
    # projected_pool_makespan_seconds (LPT packing of the measured
    # per-cell walls) for the expected multi-core makespan.
    cpus = os.cpu_count() or 1
    report["conditions"] = {
        "cpu_count": cpus,
        "jobs": jobs,
        "pool_oversubscribed": jobs > cpus,
        "speedup_comparable": jobs <= cpus,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if not identical:
        print("ERROR: serial and parallel tables differ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
