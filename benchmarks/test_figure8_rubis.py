"""Benchmark: regenerate Figure 8 — RUBiS session-average bars."""

from __future__ import annotations

import pytest

# Full-fidelity sweep: minutes of wall clock.  Excluded from the CI
# smoke job (`-m "not slow"`).
pytestmark = pytest.mark.slow

from repro.core.patterns import PatternLevel
from repro.experiments.figures import build_figure, render_figure


def test_figure8_rubis(benchmark, rubis_series):
    figure = benchmark.pedantic(
        build_figure, args=(rubis_series,), rounds=3, iterations=1
    )
    print()
    print(render_figure(figure))

    L = PatternLevel
    remote_browser = {level: figure.value("remote-browser", level) for level in L}
    remote_bidder = {level: figure.value("remote-bidder", level) for level in L}
    local_bidder = {level: figure.value("local-bidder", level) for level in L}

    # Remote browsers converge to local latency by level 4.
    assert remote_browser[L.REMOTE_FACADE] < remote_browser[L.CENTRALIZED]
    assert remote_browser[L.QUERY_CACHING] < remote_browser[L.STATEFUL_CACHING]
    assert (
        remote_browser[L.QUERY_CACHING]
        < figure.value("local-browser", L.CENTRALIZED) + 25.0
    )

    # "the RUBiS bidder average response time increased" at level 3,
    # because bidders block on Store pages without gaining from replicas.
    assert remote_bidder[L.STATEFUL_CACHING] > remote_bidder[L.REMOTE_FACADE]
    assert local_bidder[L.STATEFUL_CACHING] > local_bidder[L.REMOTE_FACADE]

    # Asynchronous updates give bidders their best latencies.
    assert remote_bidder[L.ASYNC_UPDATES] < remote_bidder[L.STATEFUL_CACHING]
    assert local_bidder[L.ASYNC_UPDATES] < local_bidder[L.STATEFUL_CACHING]

    # The final configuration is the overall best (§4.6).
    overall = {
        level: sum(figure.value(group, level) for group in figure.groups)
        for level in L
    }
    assert overall[L.ASYNC_UPDATES] == min(overall.values())
