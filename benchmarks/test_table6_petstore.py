"""Benchmark: regenerate Table 6 — Pet Store per-page response times.

Runs all five configurations under the paper's workload (30 req/s, 80/20
browser/buyer mix), prints the table in the paper's layout, and asserts
the qualitative shape of every configuration's row.
"""

from __future__ import annotations

import pytest

# Full-fidelity sweep: minutes of wall clock.  Excluded from the CI
# smoke job (`-m "not slow"`).
pytestmark = pytest.mark.slow

from repro.core.patterns import PatternLevel
from repro.experiments.tables import build_table, render_table

from conftest import bench_workload, series_for


def test_table6_petstore(benchmark):
    series = benchmark.pedantic(
        lambda: series_for("petstore"), rounds=1, iterations=1
    )
    table = build_table(series)
    print()
    print(render_table(table))

    def mean(level, locality, page):
        return table.mean(level, locality, page)

    L = PatternLevel
    # §4.1 — centralized: every remote page pays ~2 WAN round trips.
    for page in table.pages:
        gap = mean(L.CENTRALIZED, "remote", page) - mean(L.CENTRALIZED, "local", page)
        assert 330.0 < gap < 480.0, (page, gap)

    # §4.2 — façade: session pages local for remote buyers; shared-data
    # pages cost one RMI; Verify Signin costs two.
    for page in ("Main", "Signin", "Checkout", "Place Order", "Billing", "Signout"):
        assert mean(L.REMOTE_FACADE, "remote", page) < 110.0, page
    for page in ("Category", "Product", "Item"):
        assert 200.0 < mean(L.REMOTE_FACADE, "remote", page) < 450.0, page
    assert mean(L.REMOTE_FACADE, "remote", "Verify Signin") > 1.6 * mean(
        L.REMOTE_FACADE, "remote", "Shopping Cart"
    )

    # §4.3 — replicas: Item and Shopping Cart local; Commit blocked.
    assert mean(L.STATEFUL_CACHING, "remote", "Item") < 120.0
    assert mean(L.STATEFUL_CACHING, "remote", "Shopping Cart") < 120.0
    for locality in ("local", "remote"):
        assert (
            mean(L.STATEFUL_CACHING, locality, "Commit Order")
            > mean(L.REMOTE_FACADE, locality, "Commit Order") + 150.0
        ), locality

    # §4.4 — query caches: Category/Product local; Search still remote.
    assert mean(L.QUERY_CACHING, "remote", "Category") < 120.0
    assert mean(L.QUERY_CACHING, "remote", "Product") < 120.0
    assert mean(L.QUERY_CACHING, "remote", "Search") > 200.0

    # §4.5 — async: Commit recovers; reads stay local.
    for locality in ("local", "remote"):
        assert (
            mean(L.ASYNC_UPDATES, locality, "Commit Order")
            < mean(L.QUERY_CACHING, locality, "Commit Order") - 150.0
        ), locality
    assert mean(L.ASYNC_UPDATES, "remote", "Item") < 120.0
