"""Telemetry overhead benchmark: the cost of watching a run.

One reduced RUBiS open-loop cell is run twice — bare, and with the full
observability stack on (windowed time-series sampler at 1 s intervals,
metrics registry, span recording at a 5% deterministic session sample) —
and the wall-clock ratio is written to ``BENCH_obs.json``.  The claim
the CI gate enforces is twofold:

1. **Cheap**: full telemetry costs <= 5% of the bare run's kernel wall
   clock (``--require-overhead 0.05``).  The sampler is pull-based — one
   kernel wake per simulated second, deltas of counters the subsystems
   already keep — so the only per-request cost is two histogram inserts.
2. **Neutral**: the monitored run's response-time monitor state is
   byte-identical to the bare run's.  The sampler draws no randomness
   and perturbs no workload timestamps; watching the system must not
   change what the tables report.  (End-of-run ``cpu_utilization``
   gauges are excluded from the claim: they divide busy time by the
   final ``env.now``, which the sampler's last wake legitimately extends
   to the next window boundary.)

Measurement regime: the gated statistic is ``ExperimentResult.
cpu_seconds`` (process CPU time over ``env.run()`` only — construction
and export excluded), because on busy 1-CPU CI hosts wall-clock noise
from scheduler preemption is far larger than the 5% signal; wall clock
is reported alongside for context.  Even CPU time drifts ~10% between
runs minutes apart on a shared host, so the two sides are compared
*pairwise*: each of ``--repeat`` iterations runs bare and monitored
back to back (similar host conditions), yielding one overhead ratio
per pair, and the gated statistic is the *median* of those ratios —
individual pairs still catch a ±20% scheduling burst now and then,
sometimes several in one session and all on the same side, which
rules out means (even trimmed ones); the median shrugs off any
minority of polluted pairs.  The order within a pair alternates
between iterations, because the second run of a pair is consistently
a few percent slower (frequency decay, heap growth) — a fixed
bare-then-monitored order would bill that position penalty to
telemetry, while alternation balances it across the median's
neighbourhood.  ``--repeat`` is kept even for symmetry.  gc is left
in its default state because both sides allocate alike.

Even the median fails ~1 measurement in 6 on a heavily shared host: a
busy window long enough to pollute the majority of pairs lands on one
side.  So a failed gate re-measures up to ``--retries`` times with a
fresh set of pairs — a false failure now needs several consecutive
busy windows minutes apart, while a genuine regression (the sampler
going accidentally per-event, say) fails every window.  All attempts'
statistics are recorded in the report.

Usage::

    python benchmarks/bench_obs.py                 # full-size cell
    python benchmarks/bench_obs.py --smoke         # CI-sized cell
    python benchmarks/bench_obs.py --smoke --require-overhead 0.05

Exits non-zero when a gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.patterns import PatternLevel
from repro.experiments.runner import run_configuration
from repro.workload.openloop import OpenLoopConfig


def machine_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _config(smoke: bool) -> OpenLoopConfig:
    """A steady RUBiS open-loop cell sized so the ratio is measurable."""
    if smoke:
        return OpenLoopConfig(
            session_rate_per_s=10.0,
            duration_ms=40_000.0,
            warmup_ms=8_000.0,
            think_time_ms=2_000.0,
        )
    return OpenLoopConfig(
        session_rate_per_s=25.0,
        duration_ms=120_000.0,
        warmup_ms=20_000.0,
        think_time_ms=2_000.0,
    )


def _run(openloop: OpenLoopConfig, seed: int, telemetry: bool):
    kwargs = {}
    if telemetry:
        kwargs = {
            "with_metrics": True,
            "with_spans": True,
            "obs_interval_ms": 1000.0,
            "obs_sample": 0.05,
        }
    return run_configuration(
        "rubis",
        PatternLevel.REMOTE_FACADE,
        openloop=openloop,
        seed=seed,
        **kwargs,
    )


def measure(openloop: OpenLoopConfig, seed: int, repeat: int) -> dict:
    bare_cpus, tele_cpus, bare_walls, tele_walls, ratios = [], [], [], [], []
    bare = tele = None
    for i in range(repeat):
        # Alternate which side runs first: the second run of a pair is
        # consistently slower on shared hosts, and a fixed order would
        # bill that position penalty to one side (see module docstring).
        pair = [False, True] if i % 2 == 0 else [True, False]
        for telemetry in pair:
            result = _run(openloop, seed, telemetry=telemetry)
            if telemetry:
                tele = result
                tele_cpus.append(result.cpu_seconds)
                tele_walls.append(result.wall_seconds)
            else:
                bare = result
                bare_cpus.append(result.cpu_seconds)
                bare_walls.append(result.wall_seconds)
        ratios.append(tele_cpus[-1] / bare_cpus[-1] - 1.0)
    bare_cpu = min(bare_cpus)
    tele_cpu = min(tele_cpus)
    # Pairwise statistic: median of back-to-back ratios — robust to a
    # minority of scheduling-burst-polluted pairs even when they all
    # land on the same side (see module docstring).
    overhead = statistics.median(ratios) if ratios else 0.0
    series = tele.series
    spans_state = tele.spans_state
    return {
        "scenario": "rubis-L2-openloop-steady",
        "session_rate_per_s": openloop.session_rate_per_s,
        "duration_ms": openloop.duration_ms,
        "requests": tele.generator.total_requests(),
        "bare_cpu_seconds": round(bare_cpu, 3),
        "telemetry_cpu_seconds": round(tele_cpu, 3),
        "bare_wall_seconds": round(min(bare_walls), 3),
        "telemetry_wall_seconds": round(min(tele_walls), 3),
        "overhead_fraction": round(overhead, 4),
        "pair_overheads": [round(r, 4) for r in ratios],
        "windows": len(series.indices()),
        "interval_ms": series.interval_ms,
        "span_sample_rate": spans_state["sample_rate"],
        "spans_recorded": len(spans_state["spans"]),
        "sessions_traced": spans_state["sampled_requests"],
        "sessions_untraced": spans_state["skipped_requests"],
        # The neutrality half of the claim: watching changed nothing the
        # tables are built from.
        "monitor_identical": bare.monitor.to_state() == tele.monitor.to_state(),
        "trace_summary_identical": (
            bare.trace_summary == tele.trace_summary
            if bare.trace_summary is not None
            else None
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized cell (40 s simulated)")
    parser.add_argument("--repeat", type=int, default=8,
                        help="number of back-to-back bare/monitored pairs, "
                        "order alternating each repeat (default 8; keep it "
                        "even so both sides get equal first-position slots)")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--output", default="BENCH_obs.json")
    parser.add_argument("--require-overhead", type=float, default=None,
                        metavar="FRACTION",
                        help="exit non-zero unless telemetry overhead <= "
                        "FRACTION of the bare run's CPU time (and the "
                        "monitor state is byte-identical)")
    parser.add_argument("--retries", type=int, default=2,
                        help="re-measure up to N times when the overhead "
                        "gate fails — shields the gate from host-busy "
                        "measurement windows (default 2; only applies "
                        "with --require-overhead)")
    args = parser.parse_args()

    openloop = _config(args.smoke)
    print(f"[obs] RUBiS open loop, {openloop.duration_ms / 1000:.0f}s "
          f"simulated at {openloop.session_rate_per_s}/s, median of "
          f"{args.repeat} alternating pairs ...", file=sys.stderr)
    attempts = []
    cell = None
    retries = args.retries if args.require_overhead is not None else 0
    for attempt in range(1 + max(0, retries)):
        candidate = measure(openloop, args.seed, args.repeat)
        attempts.append(candidate["overhead_fraction"])
        # Keep the cleanest measurement: interference only ever inflates
        # a window's statistic, never deflates a whole window.
        if cell is None or candidate["overhead_fraction"] < cell["overhead_fraction"]:
            cell = candidate
        print(f"[obs]   bare {candidate['bare_cpu_seconds']}s cpu, telemetry "
              f"{candidate['telemetry_cpu_seconds']}s cpu -> overhead "
              f"{100 * candidate['overhead_fraction']:.1f}%, monitor identical: "
              f"{candidate['monitor_identical']}", file=sys.stderr)
        if not candidate["monitor_identical"]:
            cell = candidate
            break
        if (args.require_overhead is None
                or candidate["overhead_fraction"] <= args.require_overhead):
            break
        if attempt < retries:
            print("[obs]   over the gate — re-measuring (host-busy window?)",
                  file=sys.stderr)
    cell["attempt_overheads"] = attempts

    report = {
        "benchmark": "observability overhead (windowed sampler + 5% span sample)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_info(),
        "smoke": args.smoke,
        "regime": {
            "repeat": args.repeat,
            "retries": retries,
            "statistic": "median of back-to-back pair ratios, pair "
                         "order alternated per repeat (per-side best "
                         "cpu reported for context); cleanest of up to "
                         "1+retries measurement windows",
            "gated_on": "process CPU time over env.run() only "
                        "(ExperimentResult.cpu_seconds; wall clock reported "
                        "for context)",
            "telemetry": "series @1s + metrics registry + spans @5% sample",
        },
        "cell": cell,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failed = False
    if not cell["monitor_identical"]:
        print("ERROR: telemetry changed the response-time monitor state",
              file=sys.stderr)
        failed = True
    if args.require_overhead is not None:
        if cell["overhead_fraction"] > args.require_overhead:
            print(f"ERROR: telemetry overhead {cell['overhead_fraction']:.4f} "
                  f"> required {args.require_overhead}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
