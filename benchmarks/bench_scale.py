"""Open-loop scale benchmark: session capacity and kernel throughput.

Two measurements back the calendar-queue scalability work, written to
``BENCH_scale.json``:

1. **Kernel microbench** — pure session churn through the live kernel
   and through the frozen pre-calendar-queue baseline
   (``benchmarks/baseline_kernel.py``, the seed tree's single-binary-
   heap kernel).  Each of N sessions sleeps through a fixed number of
   think times drawn once per session from an exponential with the
   open-loop engine's 7 s default mean, truncated to whole milliseconds
   exactly as the engine truncates them (the RUBiS client emulator
   schedules thinks via ``Thread.sleep(ms)``).  The live kernel sleeps
   through ``yield env.sleep(t)``; the baseline predates the sleep lane,
   so its sessions wait the idiomatic way it offers —
   ``yield env.timeout(t)``, one Timeout event plus callback list per
   think, which is precisely the allocation hot path this PR interned.
   N spans 10^5 and 10^6 concurrent sessions.

2. **Full-stack run** — the RUBiS open-loop scenario through the entire
   simulated testbed (HTTP front ends, EJB containers, database,
   wide-area links), sized so the number of simultaneously active
   sessions sustains >= 10^5: short transition-matrix sessions with
   long think times, Little's law doing the rest.  Reported: peak
   concurrent sessions, total page fetches, kernel wall clock.

Measurement regime, documented because it is part of the number: wall
clock covers ``env.run()`` only (scenario construction excluded); the
garbage collector is disabled during the timed region for *both*
kernels — with it enabled the numbers drop for both and the ratio keeps
the same shape, but gc pauses add run-to-run noise — and each cell
reports the best of ``--repeat`` runs, live and baseline interleaved so
shared-host speed drift hits both sides alike.  Events are counted
analytically: one bootstrap dispatch plus one wake per think per
session.

Usage::

    python benchmarks/bench_scale.py                 # full: 1e5 + 1e6 + stack
    python benchmarks/bench_scale.py --smoke         # CI: 1e4 cells, small stack
    python benchmarks/bench_scale.py --require-speedup 5.0 --require-sessions 100000

Exits non-zero when a ``--require-*`` gate fails.
"""

from __future__ import annotations

import argparse
import gc
import importlib.util
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.simnet.kernel import Environment

_BASELINE_PATH = Path(__file__).parent / "baseline_kernel.py"


def _load_baseline():
    spec = importlib.util.spec_from_file_location("baseline_kernel", _BASELINE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def machine_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


# -- kernel microbench -------------------------------------------------------

THINK_MEAN_MS = 7_000.0  # the open-loop engine's default
WAKES_PER_SESSION = 10


def _session_thinks(n: int, seed: int = 7):
    """One ms-truncated exponential think per session, engine-style."""
    rng = random.Random(seed)
    expovariate = rng.expovariate
    rate = 1.0 / THINK_MEAN_MS
    return [max(1.0, float(int(expovariate(rate)))) for _ in range(n)]


def _churn_live(n: int, wakes: int) -> float:
    """Wall seconds for n sessions x wakes sleeps through the live kernel."""
    env = Environment()

    def session(think):
        for _ in range(wakes):
            yield think

    for think in _session_thinks(n):
        env.process(session(think))
    gc.disable()
    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    gc.enable()
    del env
    gc.collect()
    return wall


def _churn_baseline(n: int, wakes: int) -> float:
    """Same churn through the frozen heapq kernel (timeout per think)."""
    baseline = _load_baseline()
    env = baseline.Environment()

    def session(env, think):
        for _ in range(wakes):
            yield env.timeout(think)

    for think in _session_thinks(n):
        env.process(session(env, think))
    gc.disable()
    started = time.perf_counter()
    env.run()
    wall = time.perf_counter() - started
    gc.enable()
    del env
    gc.collect()
    return wall


def kernel_microbench(sessions: int, wakes: int, repeat: int) -> dict:
    events = sessions * (wakes + 1)
    # Interleave live/baseline repeats: host speed drifts on shared
    # machines, and alternating keeps both kernels' best-of sampled
    # from the same conditions instead of handing one side a fast
    # minute and the other a slow one.
    live_walls, base_walls = [], []
    for _ in range(repeat):
        live_walls.append(_churn_live(sessions, wakes))
        base_walls.append(_churn_baseline(sessions, wakes))
    live_wall = min(live_walls)
    base_wall = min(base_walls)
    live_rate = events / live_wall
    base_rate = events / base_wall
    return {
        "concurrent_sessions": sessions,
        "wakes_per_session": wakes,
        "events": events,
        "live_events_per_sec": round(live_rate),
        "baseline_events_per_sec": round(base_rate),
        "speedup": round(live_rate / base_rate, 2),
        "live_wall_seconds": round(live_wall, 3),
        "baseline_wall_seconds": round(base_wall, 3),
    }


# -- full-stack open-loop run ------------------------------------------------

def fullstack_openloop(target_sessions: int, seed: int) -> dict:
    """RUBiS open-loop sized to sustain ``target_sessions`` concurrently.

    Little's law sizes the scenario: sustained concurrency is arrival
    rate x mean session lifetime.  Sessions follow a short transition-
    matrix mix (mean two pages -> one think between them), so lifetime
    is dominated by a single long think, and the arrival window is long
    enough for the active-session count to plateau before it ends.
    """
    from repro.apps.rubis import browser_pattern as rubis_browser
    from repro.experiments.runner import run_configuration
    from repro.workload.openloop import OpenLoopConfig, TransitionMatrixPattern

    think_ms = 60_000.0
    # Mean lifetime is one 60 s think (geometric mean-2 sessions think
    # between pages only), and the plateau at t = 2 x think is ~86% of
    # rate x lifetime, so 1.5x headroom clears the target comfortably.
    rate_per_s = target_sessions / (think_ms / 1000.0) * 1.5
    duration_ms = think_ms * 2.0

    config = OpenLoopConfig(
        session_rate_per_s=rate_per_s,
        duration_ms=duration_ms,
        warmup_ms=duration_ms * 0.125,
        think_time_ms=think_ms,
    )

    def short_browser(catalog):
        # The stock Table-4 browse mix (real page names, structurally
        # consistent params), shortened to mean-two-page Markov sessions
        # so lifetime is think-dominated and Little's law gives the
        # concurrency target without an absurd fetch volume.
        return TransitionMatrixPattern(rubis_browser(catalog), mean_length=2.0)

    started = time.perf_counter()
    result = run_configuration(
        "rubis", 5, seed=seed, openloop=config,
        browser_pattern=short_browser,
    )
    wall = time.perf_counter() - started
    generator = result.generator
    return {
        "scenario": "rubis-openloop",
        "arrival": config.arrival,
        "session_rate_per_s": round(rate_per_s, 1),
        "duration_ms": duration_ms,
        "think_time_ms": think_ms,
        "arrivals": generator.arrivals,
        "admitted": generator.admitted,
        "completions": generator.completions,
        "dropped_sessions": generator.dropped_sessions,
        "peak_concurrent_sessions": generator.peak_active,
        "page_fetches": generator.requests_sent,
        "errors": generator.errors,
        "wall_seconds": round(wall, 2),
        "fetches_per_wall_sec": round(generator.requests_sent / wall) if wall else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 1e4-session cells only")
    parser.add_argument("--sessions", type=int, nargs="*", default=None,
                        help="microbench session counts (default: 1e5 1e6)")
    parser.add_argument("--wakes", type=int, default=WAKES_PER_SESSION)
    parser.add_argument("--repeat", type=int, default=3,
                        help="take the best of N interleaved runs per cell "
                        "(default 3)")
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--skip-fullstack", action="store_true")
    parser.add_argument("--output", default="BENCH_scale.json")
    parser.add_argument("--require-speedup", type=float, default=None, metavar="X",
                        help="exit non-zero unless the largest microbench "
                        "cell's speedup >= X")
    parser.add_argument("--require-sessions", type=int, default=None, metavar="N",
                        help="exit non-zero unless the full-stack run "
                        "sustains >= N concurrent sessions")
    args = parser.parse_args()

    if args.sessions:
        session_counts = args.sessions
    elif args.smoke:
        session_counts = [10_000]
    else:
        session_counts = [100_000, 1_000_000]
    fullstack_target = 10_000 if args.smoke else 100_000

    cells = []
    for sessions in session_counts:
        print(f"[scale] kernel microbench: {sessions:,} sessions x "
              f"{args.wakes} wakes ...", file=sys.stderr)
        cell = kernel_microbench(sessions, args.wakes, args.repeat)
        print(f"[scale]   live {cell['live_events_per_sec']:,} ev/s, "
              f"baseline {cell['baseline_events_per_sec']:,} ev/s, "
              f"speedup {cell['speedup']}x", file=sys.stderr)
        cells.append(cell)

    fullstack = None
    if not args.skip_fullstack:
        print(f"[scale] full-stack RUBiS open loop, target "
              f"{fullstack_target:,} concurrent sessions ...", file=sys.stderr)
        fullstack = fullstack_openloop(fullstack_target, args.seed)
        print(f"[scale]   peak {fullstack['peak_concurrent_sessions']:,} "
              f"concurrent sessions, {fullstack['page_fetches']:,} fetches "
              f"in {fullstack['wall_seconds']}s wall", file=sys.stderr)

    report = {
        "benchmark": "open-loop scale (calendar-queue kernel vs heapq baseline)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_info(),
        "smoke": args.smoke,
        "regime": {
            "gc": "disabled during timed region (both kernels)",
            "repeat": args.repeat,
            "statistic": "best of interleaved repeats",
            "think_distribution": f"expovariate(mean={THINK_MEAN_MS}ms), "
                                  "truncated to whole ms",
            "baseline_wait": "yield env.timeout(t) (pre-sleep-lane idiom)",
            "live_wait": "yield env.sleep(t)",
        },
        "kernel_microbench": cells,
        "fullstack": fullstack,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failed = False
    if args.require_speedup is not None and cells:
        top = max(cells, key=lambda c: c["concurrent_sessions"])
        if top["speedup"] < args.require_speedup:
            print(f"ERROR: speedup {top['speedup']} < required "
                  f"{args.require_speedup} at {top['concurrent_sessions']:,} "
                  "sessions", file=sys.stderr)
            failed = True
    if args.require_sessions is not None and fullstack is not None:
        if fullstack["peak_concurrent_sessions"] < args.require_sessions:
            print(f"ERROR: sustained {fullstack['peak_concurrent_sessions']:,} "
                  f"< required {args.require_sessions:,} concurrent sessions",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
