"""Benchmarks for the design-choice ablations (experiment index E8)."""

from __future__ import annotations

import pytest

from repro.experiments import ablations


def test_stub_caching_ablation(benchmark):
    """EJBHomeFactory stub caching roughly halves remote façade latency."""
    results = benchmark.pedantic(ablations.ablate_stub_caching, rounds=1, iterations=1)
    print(f"\nstub caching: {results}")
    assert results["uncached"] > results["cached"] + 300.0


def test_entity_lifecycle_ablation(benchmark):
    """The §3.4 fixes shave measurable time off entity-heavy pages."""
    results = benchmark.pedantic(
        ablations.ablate_entity_lifecycle, rounds=1, iterations=1
    )
    print(f"\nentity lifecycle: {results}")
    assert results["unoptimized:verify"] > results["optimized:verify"]


def test_keep_alive_ablation(benchmark):
    """Keep-alive removes one of the two WAN round trips of §4.1."""
    results = benchmark.pedantic(ablations.ablate_keep_alive, rounds=1, iterations=1)
    print(f"\nkeep-alive: {results}")
    saved = results["no-keep-alive"] - results["keep-alive"]
    assert 150.0 < saved < 260.0  # ~one 200 ms round trip


def test_refresh_mode_ablation(benchmark):
    """Pull refresh penalizes the first reader after every write (§4.3)."""
    results = benchmark.pedantic(ablations.ablate_refresh_mode, rounds=1, iterations=1)
    print(f"\nrefresh mode: {results}")
    assert results["pull"] > results["push"] + 100.0


def test_edge_jdbc_ablation(benchmark):
    """Direct JDBC from the edge web tier is catastrophic vs the façade."""
    results = benchmark.pedantic(ablations.ablate_edge_jdbc, rounds=1, iterations=1)
    print(f"\nedge JDBC: {results}")
    assert results["edge-jdbc:category"] > 2.5 * results["facade:category"]
    assert results["edge-jdbc:item"] > 2.5 * results["facade:item"]


def test_commit_batch_scaling(benchmark):
    """Write latency grows with cart size under blocking pushes and stays
    flat(ter) under asynchronous updates (§4.5's scalability argument)."""
    results = benchmark.pedantic(
        ablations.ablate_commit_batch, args=((1, 2, 4, 8),), rounds=1, iterations=1
    )
    print(f"\ncommit batch: {results}")
    sync, asynchronous = results["sync"], results["async"]
    assert sync[8] > sync[1]  # more fine-grained updates, more latency
    for size in (1, 2, 4, 8):
        assert asynchronous[size] < sync[size] - 200.0, size
