"""Frozen copy of the pre-calendar-queue simulation kernel.

This is the seed tree's ``repro.simnet.kernel`` — a single binary heap
of ``(time, sequence, item)`` entries, with per-sleep ``Timeout`` event
allocation — kept verbatim so ``bench_scale.py`` can measure the live
kernel against the exact baseline it replaced, on the same machine, in
the same process.  Do not modify it and do not import it from product
code; it exists only as a measurement yardstick.

Original module docstring follows.

Discrete-event simulation kernel.

The kernel executes *processes* — Python generator functions that yield
:class:`Event` objects — against a single global virtual clock.  It is the
substrate on which every other subsystem (network links, the database
engine, EJB containers, HTTP clients) is built.

Design notes
------------

* Time is a ``float`` in **simulated milliseconds**.  Nothing in the kernel
  depends on the unit, but every caller in this repository uses ms.
* A process yields an :class:`Event`; the kernel suspends the process until
  the event fires and resumes it with the event's value (or throws the
  event's exception into it).  Sub-routines compose with ``yield from``.
* Event ordering is deterministic: events scheduled for the same timestamp
  fire in schedule order (a monotonically increasing sequence number breaks
  ties), which makes simulations reproducible byte-for-byte.
* Scheduling is two-tier: items due *now* (triggered events, deferred
  calls, zero-delay timeouts) go to a FIFO ready queue; only items with a
  strictly positive delay pay for the heap.  The run loop merges the two
  in global (time, sequence) order, so the observable execution order is
  exactly that of a single unified priority queue.

Example
-------

>>> env = Environment()
>>> log = []
>>> def proc(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(proc(env, 'b', 2.0))
>>> _ = env.process(proc(env, 'a', 1.0))
>>> env.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the interrupting party's reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class StopProcess(Exception):
    """Raised internally to terminate a process early with a value."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with a value
    (:meth:`succeed`) or an exception (:meth:`fail`).  Processes waiting on
    the event are resumed by the kernel in FIFO order.

    The callback list is lazy (``None`` until the first waiter) because
    most events in a simulation have exactly zero or one waiter and the
    empty-list allocation is pure overhead on the hot path.
    """

    __slots__ = (
        "env",
        "_callbacks",
        "_value",
        "_exception",
        "_triggered",
        "_scheduled",
        "_dispatched",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._scheduled = False
        self._dispatched = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or exception."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if the event failed or is pending."""
        if not self._triggered:
            raise SimulationError("event value is not yet available")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._scheduled = True
        self._value = value
        env = self.env
        env._sequence = sequence = env._sequence + 1
        env._ready.append((sequence, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._scheduled = True
        self._exception = exception
        env = self.env
        env._sequence = sequence = env._sequence + 1
        env._ready.append((sequence, self))
        return self

    # -- waiting ---------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event has already been dispatched the callback runs at the
        next scheduling opportunity (still in virtual time ``now``).
        """
        if self._dispatched:
            self.env._schedule_call(partial(callback, self))
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` ms after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ plus scheduling: timeouts are the single
        # most-allocated object in a simulation.
        self.env = env
        self._callbacks = None
        # The value is fixed now, but the event only *triggers* when the
        # kernel dispatches it at now+delay (AnyOf/AllOf rely on this).
        self._value = value
        self._exception = None
        self._triggered = False
        self._scheduled = True
        self._dispatched = False
        self.delay = delay
        env._sequence = sequence = env._sequence + 1
        if delay == 0.0:
            env._ready.append((sequence, self))
        else:
            heappush(env._heap, (env._now + delay, sequence, self))


class Process(Event):
    """A running generator.  Also an event that fires when the generator ends.

    The process event's value is the generator's return value; if the
    generator raises, the process event fails with that exception (unless a
    waiter is present, failures propagate and crash the simulation — errors
    should never pass silently).
    """

    __slots__ = ("generator", "name", "_waiting_on", "_send", "_throw", "_interrupts")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                "process() requires a generator; got %r. Did you forget to "
                "call the generator function?" % (generator,)
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._send = generator.send
        self._throw = generator.throw
        self._interrupts: Optional[List[Interrupt]] = None
        # Bootstrap: start the generator at the current simulation time.
        env._schedule_call(self._resume_initial)

    def _resume_initial(self) -> None:
        self._step(None, None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            # Stop listening to whatever we were waiting on.
            callbacks = target._callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._on_event)
                except ValueError:
                    pass
            self._waiting_on = None
        if self._interrupts is None:
            self._interrupts = []
        self._interrupts.append(Interrupt(cause))
        self.env._schedule_call(self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        self._step(None, self._interrupts.pop(0))

    # -- stepping machinery ----------------------------------------------
    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        exception = event._exception
        if exception is not None:
            self._step(None, exception)
        else:
            self._step(event._value, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            return
        try:
            if exc is not None:
                target = self._throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except StopProcess as stop:
            self.generator.close()
            self.succeed(stop.value)
            return
        except BaseException as error:
            if self._callbacks:
                self.fail(error)
            else:
                # No waiter to deliver the failure to: crash loudly.
                raise
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (use env.timeout / env.process / ...)"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another Environment")
        self._waiting_on = target
        # Inlined add_callback: this registration runs once per kernel step.
        if target._dispatched:
            self.env._schedule_call(partial(self._on_event, target))
        elif target._callbacks is None:
            target._callbacks = [self._on_event]
        else:
            target._callbacks.append(self._on_event)


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            index: event._value
            for index, event in enumerate(self.events)
            if event._triggered and event._exception is None
        }

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when the first of ``events`` fires.

    Value is a dict ``{index: value}`` of all events triggered so far.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Fires when every one of ``events`` has fired.

    Value is a dict ``{index: value}`` of every event's value.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation world: a clock, a ready queue, and a pending heap.

    Items due at the current instant live in ``_ready`` (a FIFO deque of
    ``(sequence, item)`` pairs); items due strictly later live in
    ``_heap`` as ``(time, sequence, item)`` triples.  An *item* is either
    an :class:`Event` to dispatch or a zero-argument callable.  Sequence
    numbers are assigned globally, so merging the two queues in
    ``(time, sequence)`` order reproduces exactly the behaviour of one
    unified priority queue.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: List[tuple] = []
        self._ready: deque = deque()
        self._sequence = 0
        self._active = True

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a new process starting now."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._sequence = sequence = self._sequence + 1
        if delay == 0.0:
            self._ready.append((sequence, event))
        else:
            heappush(self._heap, (self._now + delay, sequence, event))

    def _schedule_call(self, func: Callable[[], None], delay: float = 0.0) -> None:
        self._sequence = sequence = self._sequence + 1
        if delay == 0.0:
            self._ready.append((sequence, func))
        else:
            heappush(self._heap, (self._now + delay, sequence, func))

    # -- execution -----------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until both queues drain or the clock passes ``until``.

        Returns the final simulation time.  Events scheduled exactly at
        ``until`` still execute.
        """
        heap = self._heap
        ready = self._ready
        while True:
            if ready:
                # Heap entries landing exactly *now* with an older sequence
                # number must run before younger ready entries.
                if heap and heap[0][0] == self._now and heap[0][1] < ready[0][0]:
                    item = heappop(heap)[2]
                else:
                    item = ready.popleft()[1]
            elif heap:
                time = heap[0][0]
                if until is not None and time > until:
                    self._now = until
                    return until
                item = heappop(heap)[2]
                self._now = time
            else:
                break
            if isinstance(item, Event):
                # Inlined dispatch: the single hottest loop in the repo.
                item._triggered = True
                item._dispatched = True
                callbacks = item._callbacks
                if callbacks is not None:
                    item._callbacks = None
                    for callback in callbacks:
                        callback(item)
            else:
                item()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def step(self) -> bool:
        """Execute one scheduled item.  Returns False if nothing is pending."""
        heap = self._heap
        ready = self._ready
        if ready:
            if heap and heap[0][0] == self._now and heap[0][1] < ready[0][0]:
                item = heappop(heap)[2]
            else:
                item = ready.popleft()[1]
        elif heap:
            time, _sequence, item = heappop(heap)
            self._now = time
        else:
            return False
        if isinstance(item, Event):
            self._dispatch(item)
        else:
            item()
        return True

    def peek(self) -> Optional[float]:
        """Time of the next scheduled item, or None if nothing is pending."""
        if self._ready:
            return self._now
        return self._heap[0][0] if self._heap else None

    def _dispatch(self, event: Event) -> None:
        event._triggered = True
        event._dispatched = True
        callbacks = event._callbacks
        if callbacks is not None:
            event._callbacks = None
            for callback in callbacks:
                callback(event)
