"""Benchmark the cost-based query engine against forced full scans.

Builds a RUBiS-shaped database (the auction schema the paper's §4.4
caching study runs against), then executes an index-favorable workload —
category aggregates, primary-key ranges, nickname prefix searches, and
bid-history joins — twice: once with the cost-based planner free to pick
access paths, once with ``force_full_scans`` pinning every scan to the
heap.  Both passes must return identical rows; the report records the
wall-clock and simulated-cost (``rows_scanned``) improvement per query
and overall.

``rows_scanned`` is the honest currency here: the simulation charges
database time from it, so the ratio is exactly the simulated-cost
speedup and is deterministic across machines.  Wall clock is reported
alongside but only asserted via ``--require-speedup`` against the
deterministic ratio.

Workflow::

    python benchmarks/bench_query_engine.py                    # full size
    python benchmarks/bench_query_engine.py --scale 0.1        # CI smoke

Exits non-zero when the two passes disagree on results, when any
workload query fails to select an index-backed plan, or when the
simulated-cost speedup falls below ``--require-speedup``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.apps.rubis.schema import rubis_schemas
from repro.rdbms.engine import Database

BASE_USERS = 2000
BASE_ITEMS = 5000
BASE_BIDS = 10000
CATEGORIES = 20
REGIONS = 10


def machine_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def build_database(scale: float, seed: int) -> Database:
    rng = random.Random(seed)
    users = max(50, int(BASE_USERS * scale))
    items = max(100, int(BASE_ITEMS * scale))
    bids = max(200, int(BASE_BIDS * scale))
    db = Database("rubis-bench")
    for schema in rubis_schemas():
        db.create_table(schema)
    db.load("regions", ({"id": i, "name": f"region-{i}"} for i in range(REGIONS)))
    db.load(
        "categories", ({"id": i, "name": f"category-{i}"} for i in range(CATEGORIES))
    )
    db.load(
        "users",
        (
            {
                "id": i,
                "nickname": f"user{i:05d}",
                "password": "pw",
                "email": f"u{i}@example.com",
                "rating": rng.randint(0, 50),
                "region_id": rng.randrange(REGIONS),
            }
            for i in range(users)
        ),
    )
    db.load(
        "items",
        (
            {
                "id": i,
                "name": f"item {i}",
                "description": "x" * 20,
                "initial_price": round(rng.uniform(1.0, 500.0), 2),
                "quantity": 1,
                "nb_of_bids": 0,
                "max_bid": round(rng.uniform(1.0, 800.0), 2),
                "end_date": float(rng.randrange(100_000)),
                "seller": rng.randrange(users),
                "category": rng.randrange(CATEGORIES),
            }
            for i in range(items)
        ),
    )
    db.load(
        "bids",
        (
            {
                "id": i,
                "user_id": rng.randrange(users),
                "item_id": rng.randrange(items),
                "qty": 1,
                "bid": round(rng.uniform(1.0, 800.0), 2),
                "max_bid": round(rng.uniform(1.0, 900.0), 2),
                "date": float(i),
            }
            for i in range(bids)
        ),
    )
    return db


def build_workload(db: Database, seed: int, queries_per_kind: int) -> list:
    """[(kind, sql, params), ...] — deterministic, index-favorable."""
    rng = random.Random(seed + 1)
    n_users = len(db.table("users"))
    n_items = len(db.table("items"))
    workload = []
    for _ in range(queries_per_kind):
        category = rng.randrange(CATEGORIES)
        workload.append(
            (
                "category_aggregate",
                "SELECT COUNT(*) AS n, MAX(max_bid) AS top FROM items "
                "WHERE category = ?",
                (category,),
            )
        )
        lo = rng.randrange(max(1, n_items - 60))
        workload.append(
            (
                "item_id_range",
                "SELECT id, name, max_bid FROM items WHERE id BETWEEN ? AND ?",
                (lo, lo + 50),
            )
        )
        prefix = f"user{rng.randrange(max(1, n_users // 10)):04d}"
        workload.append(
            (
                "nickname_prefix",
                "SELECT id, nickname FROM users WHERE nickname LIKE ?",
                (prefix + "%",),
            )
        )
        workload.append(
            (
                "bid_history_join",
                "SELECT bids.id, bids.bid, u.nickname FROM bids "
                "JOIN users u ON bids.user_id = u.id WHERE bids.item_id = ?",
                (rng.randrange(n_items),),
            )
        )
        workload.append(
            (
                "region_members",
                "SELECT COUNT(*) AS n FROM users WHERE region_id = ?",
                (rng.randrange(REGIONS),),
            )
        )
    return workload


def checksum(result) -> int:
    return hash(
        tuple(tuple(sorted(row.items())) for row in result.rows)
    )


def run_pass(db: Database, workload: list, force_full: bool) -> dict:
    """One timed pass; returns per-kind wall/rows_scanned plus checksums."""
    executor = db.executor
    executor.force_full_scans = force_full
    per_kind = {}
    checksums = []
    started = time.perf_counter()
    for kind, sql, params in workload:
        q_started = time.perf_counter()
        result = db.execute(sql, params)
        elapsed = time.perf_counter() - q_started
        checksums.append(checksum(result))
        slot = per_kind.setdefault(
            kind, {"wall_seconds": 0.0, "rows_scanned": 0, "queries": 0}
        )
        slot["wall_seconds"] += elapsed
        slot["rows_scanned"] += result.rows_scanned
        slot["queries"] += 1
    total_wall = time.perf_counter() - started
    executor.force_full_scans = False
    for slot in per_kind.values():
        slot["wall_seconds"] = round(slot["wall_seconds"], 4)
    return {
        "total_wall_seconds": round(total_wall, 4),
        "total_rows_scanned": sum(s["rows_scanned"] for s in per_kind.values()),
        "per_kind": per_kind,
        "checksums": checksums,
    }


def collect_plans(db: Database, workload: list) -> dict:
    """One EXPLAIN per query kind: chosen op and rendered text."""
    seen = {}
    for kind, sql, params in workload:
        if kind in seen:
            continue
        plan = db.explain(sql, params)
        seen[kind] = {
            "chosen_op": plan.root.op,
            "access_paths": [node.op for node in plan.access_paths()],
            "explain": plan.render(),
        }
    return seen


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="data size multiplier (default %(default)s)")
    parser.add_argument("--queries-per-kind", type=int, default=40)
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--output", default="BENCH_query_engine.json")
    parser.add_argument("--require-speedup", type=float, default=2.0, metavar="X",
                        help="exit non-zero unless the simulated-cost speedup "
                        "(rows scanned, full/planned) is >= X (default %(default)s)")
    args = parser.parse_args()

    print(f"[bench] building RUBiS data at scale {args.scale:g} ...", file=sys.stderr)
    db = build_database(args.scale, args.seed)
    workload = build_workload(db, args.seed, args.queries_per_kind)

    plans = collect_plans(db, workload)
    index_backed = {
        kind: info["chosen_op"] != "full-scan" or "index-eq" in info["access_paths"]
        for kind, info in plans.items()
    }

    print(f"[bench] planned pass: {len(workload)} queries ...", file=sys.stderr)
    planned = run_pass(db, workload, force_full=False)
    print("[bench] forced full-scan pass ...", file=sys.stderr)
    forced = run_pass(db, workload, force_full=True)

    results_identical = planned["checksums"] == forced["checksums"]
    cost_speedup = (
        round(forced["total_rows_scanned"] / planned["total_rows_scanned"], 3)
        if planned["total_rows_scanned"] else None
    )
    wall_speedup = (
        round(forced["total_wall_seconds"] / planned["total_wall_seconds"], 3)
        if planned["total_wall_seconds"] else None
    )

    per_kind = {}
    for kind in planned["per_kind"]:
        p, f = planned["per_kind"][kind], forced["per_kind"][kind]
        per_kind[kind] = {
            "queries": p["queries"],
            "chosen_op": plans[kind]["chosen_op"],
            "planned_rows_scanned": p["rows_scanned"],
            "fullscan_rows_scanned": f["rows_scanned"],
            "cost_speedup": (
                round(f["rows_scanned"] / p["rows_scanned"], 3)
                if p["rows_scanned"] else None
            ),
            "planned_wall_seconds": p["wall_seconds"],
            "fullscan_wall_seconds": f["wall_seconds"],
        }

    executor = db.executor
    report = {
        "benchmark": "cost-based query engine vs forced full scans (RUBiS workload)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_info(),
        "scale": args.scale,
        "seed": args.seed,
        "queries": len(workload) * 2,
        "results_identical": results_identical,
        "index_backed_plans": index_backed,
        "simulated_cost_speedup": cost_speedup,
        "wall_clock_speedup": wall_speedup,
        "planned_total_rows_scanned": planned["total_rows_scanned"],
        "fullscan_total_rows_scanned": forced["total_rows_scanned"],
        "planned_total_wall_seconds": planned["total_wall_seconds"],
        "fullscan_total_wall_seconds": forced["total_wall_seconds"],
        "executor_counters": {
            "index_scans": executor.index_scans,
            "full_scans": executor.full_scans,
            "range_scans": executor.range_scans,
            "prefix_scans": executor.prefix_scans,
            "join_index_lookups": executor.join_index_lookups,
            "join_full_scans": executor.join_full_scans,
        },
        "per_kind": per_kind,
        "explain_samples": {k: v["explain"] for k, v in plans.items()},
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps({k: v for k, v in report.items() if k != "explain_samples"},
                     indent=2))

    if not results_identical:
        print("ERROR: planned and full-scan passes returned different rows",
              file=sys.stderr)
        return 1
    not_indexed = [k for k, ok in index_backed.items() if not ok]
    if not_indexed:
        print(f"ERROR: workload queries not index-backed: {not_indexed}",
              file=sys.stderr)
        return 1
    if args.require_speedup is not None and (
        cost_speedup is None or cost_speedup < args.require_speedup
    ):
        print(
            f"ERROR: simulated-cost speedup {cost_speedup} < required "
            f"{args.require_speedup}", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
