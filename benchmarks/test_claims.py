"""Benchmarks for the paper's point claims (experiment index E5-E7).

* E5 (§4.1): WAN access costs approximately two extra round trips —
  one TCP handshake plus one HTTP exchange — about 400 ms at 100 ms
  one-way latency.
* E6 (§4.3): the blocking push achieves zero staleness, at the price of
  writer latency proportional to the WAN round trip.
* E7 (§4.5): asynchronous updates restore writer latency; staleness is
  bounded by the one-way propagation delay.
"""

from __future__ import annotations

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.web import WebRequest, http_get
from tests.helpers import run_process, tiny_system


def _ctx(env, server):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("bench", "bench", "s", "client-main-0"),
        costs=server.costs,
    )


def test_wan_overhead_is_two_round_trips(benchmark):
    """E5: centralized remote page = local page + ~2 x 200 ms."""

    def measure():
        env, system = tiny_system(PatternLevel.CENTRALIZED)
        system.warm_replicas()
        elapsed = {}
        for client in ("client-main-0", "client-edge1-0"):
            def probe(client=client):
                # Warm request first (connection pools, JNDI).
                for repeat in range(2):
                    request = WebRequest(
                        page="Notes", params={"note_id": 1},
                        session_id=f"{client}-{repeat}", client_node=client,
                    )
                    start = env.now
                    yield from http_get(env, system.main, request)
                    elapsed[client] = env.now - start

            run_process(env, probe())
        return elapsed["client-edge1-0"] - elapsed["client-main-0"]

    gap = benchmark.pedantic(measure, rounds=3, iterations=1)
    print(f"\nWAN overhead: {gap:.0f} ms (paper: ~400 ms)")
    assert 390.0 < gap < 440.0


def test_sync_push_zero_staleness_and_cost(benchmark):
    """E6: reads after commit always see the new value; writers block."""

    def measure():
        env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
        system.warm_replicas()
        main = system.main
        edge = system.servers["edge1"]
        timings = {}

        def scenario():
            ctx = _ctx(env, main)
            facade = yield from main.lookup(ctx, "NotesFacade")
            start = env.now
            yield from facade.call(ctx, "write_note", 1, "pushed")
            timings["write"] = env.now - start
            edge_ctx = _ctx(env, edge)
            edge_facade = yield from edge.lookup(edge_ctx, "NotesFacade")
            text = yield from edge_facade.call(edge_ctx, "read_note", 1)
            assert text == "pushed"  # zero staleness

        run_process(env, scenario())
        return timings["write"]

    write_latency = benchmark.pedantic(measure, rounds=3, iterations=1)
    print(f"\nblocking write latency: {write_latency:.0f} ms")
    assert write_latency > 200.0  # blocked on >= 1 WAN round trip


def test_async_update_cost_and_staleness_bound(benchmark):
    """E7: async writers return fast; replicas converge within ~1 one-way
    WAN delay plus processing."""

    def measure():
        env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
        system.warm_replicas()
        main = system.main
        timings = {}

        def scenario():
            ctx = _ctx(env, main)
            facade = yield from main.lookup(ctx, "NotesFacade")
            start = env.now
            yield from facade.call(ctx, "write_note", 1, "async")
            timings["write"] = env.now - start
            timings["commit_at"] = env.now

        run_process(env, scenario())  # drains deliveries
        replica = system.servers["edge1"].readonly_container("Note")
        assert replica._cache[1]["text"] == "async"
        provider = system.main.jms
        timings["staleness"] = provider.mean_delivery_latency()
        return timings

    timings = benchmark.pedantic(measure, rounds=3, iterations=1)
    print(
        f"\nasync write latency: {timings['write']:.1f} ms; "
        f"propagation delay: {timings['staleness']:.0f} ms"
    )
    assert timings["write"] < 50.0  # no WAN blocking
    # Mean delivery latency averages the local main-replica delivery (~0 ms)
    # with the two WAN edges (~100+ ms each): (0 + 2x~103)/3 ~= 69 ms.
    assert 50.0 <= timings["staleness"] < 160.0
