"""Benchmark transactional method caching (level 6) against level 5.

Two independent gates, one report:

1. **Result identity.**  On a freshly deployed level-6 RUBiS system,
   every annotated cacheable method is invoked twice on an edge
   container.  The first call misses and executes through the real
   replica/JDBC path — that result is ground truth.  The second call
   must be served from the method cache and be deeply equal to it:
   caching may never change what a method returns.

2. **Read-page latency.**  The L5 and L6 cells run the paper's
   closed-loop workload at reduced fidelity; the report compares the
   remote-browser mean per read page (the pages the annotated methods
   serve) and gates on the aggregate improvement — a level-6 deployment
   must not regress the read path it exists to accelerate.

Workflow::

    python benchmarks/bench_method_cache.py                  # full fidelity
    python benchmarks/bench_method_cache.py --duration 60 --warmup 10 --jobs 2

Exits non-zero when any cache-served result differs from its direct
execution, when level 6 records no cache hits, or when the aggregate
read-page improvement falls below ``--require-improvement``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.apps import rubis
from repro.core.distribution import distribute
from repro.core.patterns import PatternLevel
from repro.experiments.calibration import default_workload
from repro.experiments.parallel import run_cells
from repro.experiments.progress import ProgressReporter
from repro.middleware.context import InvocationContext, RequestInfo
from repro.simnet.kernel import Environment
from repro.simnet.rng import Streams
from repro.simnet.topology import TestbedConfig, build_testbed

# Remote-browser pages served by the annotated cacheable methods.
READ_PAGES = (
    "All Categories",
    "All Regions",
    "Bids",
    "Category",
    "Category & Region",
    "Item",
    "Region",
    "User Info",
)

LEVELS = [PatternLevel.ASYNC_UPDATES, PatternLevel.METHOD_CACHING]


def machine_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


# -- gate 1: cache-served results are identical to direct execution --------


def identity_cases(catalog) -> list:
    """Every annotated (component, method, args) with catalog-real args."""
    return [
        ("SB_BrowseCategories", "get_all", ()),
        ("SB_BrowseCategories", "get_for_region", (catalog.region_ids[0],)),
        ("SB_BrowseRegions", "get_all", ()),
        ("SB_SearchItemsInCategory", "get", (catalog.category_ids[0],)),
        (
            "SB_SearchItemsInCategoryRegion",
            "get",
            (catalog.category_ids[0], catalog.region_ids[0]),
        ),
        ("SB_ViewItem", "get", (catalog.item_ids[0],)),
        ("SB_ViewBidHistory", "get", (catalog.item_ids[0],)),
        ("SB_ViewUserInfo", "get", (catalog.user_ids[0],)),
    ]


def run_process(env: Environment, generator):
    process = env.process(generator)
    env.run()
    if not process.triggered:
        raise AssertionError("benchmark invocation did not finish")
    return process.value


def invoke_on_edge(env, system, component, method, args):
    server = system.servers["edge1"]
    ctx = InvocationContext(
        env=env,
        server=server,
        request=RequestInfo(component, "bench", "identity", "client-edge1-0"),
        costs=server.costs,
    )

    def proc():
        facade = yield from server.lookup(ctx, component)
        result = yield from facade.call(ctx, method, *args)
        return result

    return run_process(env, proc())


def run_identity_gate(seed: int) -> dict:
    database, catalog = rubis.populate_rubis(Streams(seed))
    env = Environment()
    testbed = build_testbed(env, TestbedConfig(db_colocated=True))
    application = rubis.build_application(
        PatternLevel.METHOD_CACHING, catalog=catalog
    )
    system = distribute(
        env, testbed, application, PatternLevel.METHOD_CACHING, database
    )
    cache = system.servers["edge1"].method_cache
    cases = []
    identical = True
    for component, method, args in identity_cases(catalog):
        hits_before = cache.stats.hits
        direct = invoke_on_edge(env, system, component, method, args)
        cached = invoke_on_edge(env, system, component, method, args)
        served_from_cache = cache.stats.hits == hits_before + 1
        case_identical = direct == cached and served_from_cache
        identical = identical and case_identical
        cases.append(
            {
                "component": component,
                "method": method,
                "served_from_cache": served_from_cache,
                "identical": case_identical,
            }
        )
    return {"cases": cases, "identical": identical}


# -- gate 2: L5 vs L6 read-page latency ------------------------------------


def run_perf_comparison(duration: float, warmup: float, seed: int, jobs: int):
    workload = default_workload(
        duration_ms=duration * 1000.0, warmup_ms=warmup * 1000.0
    )
    progress = ProgressReporter(len(LEVELS), stream=sys.stderr)
    results = run_cells(
        [("rubis", level) for level in LEVELS],
        workload=workload,
        seed=seed,
        jobs=jobs,
        progress=progress,
    )
    return {level: results[("rubis", level)] for level in LEVELS}


def page_means(result) -> dict:
    means = {}
    for page in READ_PAGES:
        mean = result.mean("remote-browser", page)
        if mean is not None:
            means[page] = round(mean, 3)
    return means


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per cell (default %(default)s)")
    parser.add_argument("--warmup", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--output", default="BENCH_method_cache.json")
    parser.add_argument("--require-improvement", type=float, default=0.0,
                        metavar="MS",
                        help="exit non-zero unless the mean read-page "
                        "improvement (L5 minus L6, ms) is >= MS "
                        "(default %(default)s)")
    args = parser.parse_args()

    print("[bench] result-identity gate on a level-6 deployment ...",
          file=sys.stderr)
    identity = run_identity_gate(args.seed)

    print(
        f"[bench] L5 vs L6 RUBiS cells, {args.duration:g}s simulated each ...",
        file=sys.stderr,
    )
    cells = run_perf_comparison(args.duration, args.warmup, args.seed, args.jobs)
    l5, l6 = cells[LEVELS[0]], cells[LEVELS[1]]

    l5_pages = page_means(l5)
    l6_pages = page_means(l6)
    deltas = {
        page: round(l5_pages[page] - l6_pages[page], 3)
        for page in l5_pages
        if page in l6_pages
    }
    mean_improvement = (
        round(sum(deltas.values()) / len(deltas), 3) if deltas else None
    )
    cache_counters = (l6.cache_stats or {}).get("method_cache", {})
    total_hits = sum(c.get("hits", 0) for c in cache_counters.values())

    report = {
        "benchmark": "transactional method caching: level 6 vs level 5 (RUBiS)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine_info(),
        "duration_s": args.duration,
        "warmup_s": args.warmup,
        "seed": args.seed,
        "results_identical": identity["identical"],
        "identity_cases": identity["cases"],
        "level5_read_page_means_ms": l5_pages,
        "level6_read_page_means_ms": l6_pages,
        "read_page_deltas_ms": deltas,
        "mean_read_page_improvement_ms": mean_improvement,
        "level6_method_cache": cache_counters,
        "level6_total_hits": total_hits,
        "level5_requests": l5.total_requests,
        "level6_requests": l6.total_requests,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if not identity["identical"]:
        bad = [c for c in identity["cases"] if not c["identical"]]
        print(f"ERROR: cache-served results differ from direct execution: {bad}",
              file=sys.stderr)
        return 1
    if total_hits <= 0:
        print("ERROR: level 6 recorded no method-cache hits", file=sys.stderr)
        return 1
    if mean_improvement is None or mean_improvement < args.require_improvement:
        print(
            f"ERROR: mean read-page improvement {mean_improvement} ms < "
            f"required {args.require_improvement} ms",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
