"""Full-scale open-loop benchmark as a pytest target.

Runs ``bench_scale.py`` at full scale (10^5 and 10^6 microbench cells
plus the 10^5-target full-stack RUBiS open loop) and checks the
properties that do not depend on the host's speed: the calendar-queue
kernel beats the frozen heapq baseline at every cell, the full-stack
run sustains >= 10^5 concurrent sessions, and every admitted session
completes.  The speedup *magnitude* is recorded in the report, not
asserted here — it varies with machine and scale (it grows toward
10^6 sessions, where the heap's O(log n) pops stop fitting in cache).

Marked ``slow``: the 10^6 cells alone take minutes.  The CI smoke job
(`scale-smoke`) runs the reduced 10^4 cells instead.

``REPRO_BENCH_JOBS`` is honored the only way a timing benchmark can:
the bench always runs its timed regions serially regardless of the
setting — a worker pool sharing the CPU would corrupt both kernels'
walls — but a multi-worker request is taken as "value wall clock over
repetition" and drops the interleaved repeat count to 1.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from conftest import BENCH_JOBS

pytestmark = pytest.mark.slow

_BENCH = Path(__file__).parent / "bench_scale.py"

FULLSTACK_TARGET = 100_000


def test_full_scale_bench(tmp_path):
    out = tmp_path / "BENCH_scale.json"
    repeat = "1" if BENCH_JOBS != 1 else "3"
    proc = subprocess.run(
        [sys.executable, str(_BENCH), "--output", str(out),
         "--repeat", repeat,
         "--require-sessions", str(FULLSTACK_TARGET)],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    report = json.loads(out.read_text())

    cells = report["kernel_microbench"]
    assert [c["concurrent_sessions"] for c in cells] == [100_000, 1_000_000]
    for cell in cells:
        assert cell["speedup"] > 1.0, cell

    stack = report["fullstack"]
    assert stack["peak_concurrent_sessions"] >= FULLSTACK_TARGET
    # Accounting identities only: fetch errors may be nonzero, because
    # an open loop drives the testbed past its capacity by design and
    # overload failures are deterministic for a fixed seed.
    assert stack["admitted"] == stack["completions"]
    assert stack["dropped_sessions"] == stack["arrivals"] - stack["admitted"]
    assert stack["errors"] <= stack["page_fetches"]
    print(f"\n1e6-cell speedup {cells[-1]['speedup']}x, "
          f"peak {stack['peak_concurrent_sessions']:,} sessions")
