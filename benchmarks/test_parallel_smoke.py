"""Smoke benchmark for the parallel experiment runner.

A short sweep (20 simulated seconds, two configurations) run both
serially and through the worker pool: asserts the rendered table is
byte-identical, and reports both wall times.  Fast enough for the CI
smoke job; the full-fidelity speedup measurement lives in
``bench_parallel_runner.py`` (writes ``BENCH_parallel_runner.json``).
"""

from __future__ import annotations

import time

from repro.core.patterns import PatternLevel
from repro.experiments.calibration import default_workload
from repro.experiments.runner import run_series
from repro.experiments.tables import build_table, render_table

SMOKE_WORKLOAD = default_workload(duration_ms=20_000.0, warmup_ms=5_000.0)
SMOKE_LEVELS = [PatternLevel.CENTRALIZED, PatternLevel.QUERY_CACHING]


def test_parallel_smoke_identical_tables(benchmark):
    def sweep_both():
        started = time.perf_counter()
        serial = run_series(
            "rubis", levels=SMOKE_LEVELS, workload=SMOKE_WORKLOAD, seed=2003, jobs=1
        )
        serial_wall = time.perf_counter() - started
        started = time.perf_counter()
        parallel = run_series(
            "rubis", levels=SMOKE_LEVELS, workload=SMOKE_WORKLOAD, seed=2003, jobs=2
        )
        parallel_wall = time.perf_counter() - started
        return serial, parallel, serial_wall, parallel_wall

    serial, parallel, serial_wall, parallel_wall = benchmark.pedantic(
        sweep_both, rounds=1, iterations=1
    )
    print(f"\nserial {serial_wall:.2f}s vs pool {parallel_wall:.2f}s "
          f"({len(SMOKE_LEVELS)} cells)")
    assert render_table(build_table(serial)) == render_table(build_table(parallel))
