"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's artifacts.  The two
five-configuration series (Pet Store and RUBiS) are expensive, so they
are produced once per session by the table benchmarks and shared with
the figure benchmarks through this cache.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

# Make both `tests.helpers` (package form) and the repo root importable
# regardless of how pytest was launched.
sys.path.insert(0, str(Path(__file__).parent.parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))

from repro.experiments.calibration import default_workload
from repro.experiments.runner import run_series

# Scaled-down run: the paper measured ~1 hour; 150 simulated seconds with
# a 40 s warm-up (plus pre-warmed replicas) reaches the same steady state.
BENCH_DURATION_MS = 150_000.0
BENCH_WARMUP_MS = 40_000.0

# Worker processes per series sweep.  The default (1) runs serially; set
# REPRO_BENCH_JOBS=0 for one worker per CPU or N for exactly N workers.
# Results are byte-identical either way — only the wall clock changes.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1")) or None

_series_cache = {}


def bench_workload():
    return default_workload(duration_ms=BENCH_DURATION_MS, warmup_ms=BENCH_WARMUP_MS)


def series_for(app: str):
    """The five-configuration series for ``app`` (cached per session)."""
    if app not in _series_cache:
        _series_cache[app] = run_series(
            app, workload=bench_workload(), seed=2003, jobs=BENCH_JOBS
        )
    return _series_cache[app]


@pytest.fixture(scope="session")
def petstore_series():
    return series_for("petstore")


@pytest.fixture(scope="session")
def rubis_series():
    return series_for("rubis")
