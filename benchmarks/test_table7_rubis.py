"""Benchmark: regenerate Table 7 — RUBiS per-page response times."""

from __future__ import annotations

import pytest

# Full-fidelity sweep: minutes of wall clock.  Excluded from the CI
# smoke job (`-m "not slow"`).
pytestmark = pytest.mark.slow

from repro.core.patterns import PatternLevel
from repro.experiments.tables import build_table, render_table

from conftest import series_for

BROWSE_QUERY_PAGES = (
    "All Categories",
    "All Regions",
    "Region",
    "Category",
    "Category & Region",
    "Bids",
    "User Info",
)


def test_table7_rubis(benchmark):
    series = benchmark.pedantic(lambda: series_for("rubis"), rounds=1, iterations=1)
    table = build_table(series)
    print()
    print(render_table(table))

    def mean(level, locality, page):
        return table.mean(level, locality, page)

    L = PatternLevel
    # §4.1 — centralized: remote ~= local + 2 WAN round trips, all pages.
    for page in table.pages:
        gap = mean(L.CENTRALIZED, "remote", page) - mean(L.CENTRALIZED, "local", page)
        assert 330.0 < gap < 480.0, (page, gap)

    # §4.2 — static/auth pages local for remote clients; others one RMI.
    for page in ("Main", "Browse", "Put Bid Auth", "Put Comment Auth"):
        assert mean(L.REMOTE_FACADE, "remote", page) < 60.0, page
    for page in BROWSE_QUERY_PAGES + ("Item", "Store Bid"):
        assert 150.0 < mean(L.REMOTE_FACADE, "remote", page) < 470.0, page

    # §4.3 — Item local via read-only beans; Store pages blocked.
    assert mean(L.STATEFUL_CACHING, "remote", "Item") < 60.0
    for page in ("Store Bid", "Store Comment"):
        assert (
            mean(L.STATEFUL_CACHING, "local", page)
            > mean(L.REMOTE_FACADE, "local", page) + 150.0
        ), page
    # Aggregate-query pages still remote at level 3.
    assert mean(L.STATEFUL_CACHING, "remote", "Bids") > 150.0

    # §4.4 — every browse page local for remote clients ("the triumphal
    # performance of RUBiS remote browser").
    for page in BROWSE_QUERY_PAGES + ("Item", "Put Bid Form"):
        assert mean(L.QUERY_CACHING, "remote", page) < 60.0, page
    # Writers still blocked.
    assert (
        mean(L.QUERY_CACHING, "local", "Store Bid")
        > mean(L.REMOTE_FACADE, "local", "Store Bid") + 150.0
    )

    # §4.5 — async updates: writers recover, reads stay local.
    for page in ("Store Bid", "Store Comment"):
        assert (
            mean(L.ASYNC_UPDATES, "local", page)
            < mean(L.QUERY_CACHING, "local", page) - 150.0
        ), page
        # Remote writers still pay one RMI (transactional access to main).
        assert 150.0 < mean(L.ASYNC_UPDATES, "remote", page) < 470.0, page
    for page in BROWSE_QUERY_PAGES:
        assert mean(L.ASYNC_UPDATES, "remote", page) < 60.0, page
