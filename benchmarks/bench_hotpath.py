"""Measure the serial hot path: wall clock per cell vs a golden baseline.

Runs the full two-app, five-level sweep (the data behind Tables 6/7 and
Figures 7/8) serially, renders every table and figure, and compares them
byte-for-byte against golden copies captured *before* the hot-path
optimizations.  Wall-clock per cell is compared against the baseline
walls recorded alongside the goldens, giving an honest speedup figure
for the same machine — or a clearly flagged non-comparison when the
baseline came from different hardware.

Workflow::

    # once, on the pre-optimization tree (already checked in):
    python benchmarks/bench_hotpath.py --write-golden

    # after any change to the request path:
    python benchmarks/bench_hotpath.py                  # full fidelity
    python benchmarks/bench_hotpath.py --duration 20 --warmup 5   # CI smoke

The script exits non-zero when any rendered table or figure differs from
its golden copy.  Speedup is *reported* always but *asserted* only with
``--require-speedup X``, and the assertion is skipped (with a structured
note in the report) when the run conditions make wall-clock comparisons
dishonest: an oversubscribed pool or a baseline recorded on a different
machine.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core.patterns import PAPER_LEVELS, PatternLevel
from repro.experiments.calibration import default_workload
from repro.experiments.figures import build_figure, render_figure
from repro.experiments.parallel import run_cells
from repro.experiments.progress import ProgressReporter
from repro.experiments.tables import build_table, render_table

APPS = ("petstore", "rubis")


def machine_info() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def golden_prefix(golden_dir: Path, duration: float, warmup: float, seed: int) -> Path:
    return golden_dir / f"d{duration:g}_w{warmup:g}_s{seed}"


def render_artifacts(results) -> dict:
    """{app: {"table": text, "figure": text}} for one sweep's results."""
    artifacts = {}
    for app in APPS:
        series = {level: results[(app, level)] for level in PAPER_LEVELS}
        artifacts[app] = {
            "table": render_table(build_table(series)),
            "figure": render_figure(build_figure(series)),
        }
    return artifacts


def run_sweep(duration: float, warmup: float, seed: int, label: str):
    workload = default_workload(duration * 1000.0, warmup * 1000.0)
    cells = [(app, level) for app in APPS for level in PAPER_LEVELS]
    print(f"[{label}] serial sweep: {len(cells)} cells x {duration:g}s ...",
          file=sys.stderr)
    started = time.perf_counter()
    results = run_cells(
        cells, workload=workload, seed=seed, jobs=1,
        progress=ProgressReporter(len(cells), label=label),
    )
    total_wall = time.perf_counter() - started
    return results, total_wall


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=150.0,
                        help="simulated seconds per cell (default %(default)s)")
    parser.add_argument("--warmup", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=2003)
    parser.add_argument("--golden-dir", default=str(Path(__file__).parent / "golden"))
    parser.add_argument("--write-golden", action="store_true",
                        help="record current output and walls as the golden baseline")
    parser.add_argument("--output", default="BENCH_hotpath.json")
    parser.add_argument("--require-speedup", type=float, default=None, metavar="X",
                        help="exit non-zero unless total speedup >= X "
                        "(skipped when conditions make the comparison dishonest)")
    args = parser.parse_args()

    golden_dir = Path(args.golden_dir)
    prefix = golden_prefix(golden_dir, args.duration, args.warmup, args.seed)

    results, total_wall = run_sweep(args.duration, args.warmup, args.seed,
                                    "golden" if args.write_golden else "sweep")
    artifacts = render_artifacts(results)
    cell_walls = {f"{app}:{int(level)}": round(r.wall_seconds, 3)
                  for (app, level), r in results.items()}

    if args.write_golden:
        prefix.mkdir(parents=True, exist_ok=True)
        for app in APPS:
            (prefix / f"{app}.table.txt").write_text(artifacts[app]["table"])
            (prefix / f"{app}.figure.txt").write_text(artifacts[app]["figure"])
        baseline = {
            "machine": machine_info(),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "simulated_seconds_per_cell": args.duration,
            "warmup_seconds": args.warmup,
            "seed": args.seed,
            "total_wall_seconds": round(total_wall, 3),
            "per_cell_wall_seconds": cell_walls,
        }
        (prefix / "baseline.json").write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"golden baseline written to {prefix}", file=sys.stderr)
        return 0

    # -- byte-identity against the golden artifacts ------------------------
    baseline_path = prefix / "baseline.json"
    if not baseline_path.exists():
        print(f"ERROR: no golden baseline at {prefix}; run with --write-golden "
              "on the reference tree first", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    identical = True
    diffs = []
    for app in APPS:
        for kind in ("table", "figure"):
            golden_text = (prefix / f"{app}.{kind}.txt").read_text()
            if artifacts[app][kind] != golden_text:
                identical = False
                diffs.append(f"{app}.{kind}")

    # -- honest speedup conditions (structured, not prose) -----------------
    current_machine = machine_info()
    conditions = {
        "cpu_count": current_machine["cpu_count"],
        "jobs": 1,
        "pool_oversubscribed": False,  # serial run: one process, no pool
        "baseline_machine": baseline["machine"],
        "same_machine_as_baseline": (
            baseline["machine"]["cpu_count"] == current_machine["cpu_count"]
            and baseline["machine"]["platform"] == current_machine["platform"]
        ),
    }
    speedup_comparable = (
        conditions["same_machine_as_baseline"]
        and not conditions["pool_oversubscribed"]
    )

    baseline_walls = baseline["per_cell_wall_seconds"]
    per_cell = {
        cell: {
            "baseline_seconds": baseline_walls.get(cell),
            "current_seconds": wall,
            "speedup": (
                round(baseline_walls[cell] / wall, 3)
                if baseline_walls.get(cell) and wall > 0 else None
            ),
        }
        for cell, wall in cell_walls.items()
    }
    total_speedup = (
        round(baseline["total_wall_seconds"] / total_wall, 3) if total_wall > 0 else None
    )

    report = {
        "benchmark": "hot-path overhaul (serial two-app five-level sweep)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": current_machine,
        "simulated_seconds_per_cell": args.duration,
        "warmup_seconds": args.warmup,
        "seed": args.seed,
        "cells": len(cell_walls),
        "tables_byte_identical": identical,
        "diverged_artifacts": diffs,
        "baseline_total_wall_seconds": baseline["total_wall_seconds"],
        "total_wall_seconds": round(total_wall, 3),
        "speedup": total_speedup,
        "speedup_comparable": speedup_comparable,
        "conditions": conditions,
        "per_cell": per_cell,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    if not identical:
        print(f"ERROR: output diverged from golden: {', '.join(diffs)}",
              file=sys.stderr)
        return 1
    if args.require_speedup is not None:
        if not speedup_comparable:
            print(
                "NOTE: speedup assertion skipped — conditions are not "
                f"comparable: {json.dumps(conditions)}", file=sys.stderr,
            )
        elif total_speedup is None or total_speedup < args.require_speedup:
            print(
                f"ERROR: speedup {total_speedup} < required "
                f"{args.require_speedup}", file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
