"""The ISSUE's regression contract: fault machinery never perturbs
fault-free runs, and fault runs are exactly as deterministic as clean
ones — same results for any worker count and for repeated seeds."""

from repro.core.patterns import PatternLevel
from repro.experiments.calibration import default_workload
from repro.experiments.runner import run_configuration, run_series
from repro.faults.scenarios import scenario
from repro.faults.schedule import FaultSchedule

DURATION_MS = 15_000.0
WARMUP_MS = 3_000.0
LEVELS = [PatternLevel.CENTRALIZED, PatternLevel.STATEFUL_CACHING]


def _workload():
    return default_workload(DURATION_MS, WARMUP_MS)


def _scenario():
    return scenario("edge-partition", DURATION_MS, WARMUP_MS)


def test_empty_schedule_reproduces_the_fault_free_run_exactly():
    """An empty FaultSchedule installs no processes and draws no random
    numbers, so the monitor state matches a run with no schedule at all."""
    baseline = run_configuration(
        "petstore", PatternLevel.STATEFUL_CACHING, workload=_workload(), seed=7
    )
    with_empty = run_configuration(
        "petstore",
        PatternLevel.STATEFUL_CACHING,
        workload=_workload(),
        seed=7,
        faults=FaultSchedule(),
    )
    assert with_empty.fault_injector is None
    assert with_empty.monitor.to_state() == baseline.monitor.to_state()
    assert with_empty.resilience == baseline.resilience


def test_fault_free_resilience_snapshot_is_all_zero():
    result = run_configuration(
        "petstore", PatternLevel.STATEFUL_CACHING, workload=_workload(), seed=7
    )
    snapshot = dict(result.resilience)
    assert snapshot.pop("requests") > 0
    assert snapshot.pop("staleness_ms") == {}
    assert all(value == 0 for value in snapshot.values())


def test_fault_run_is_identical_serial_vs_parallel():
    serial = run_series(
        "petstore", levels=LEVELS, workload=_workload(), seed=7, faults=_scenario()
    )
    parallel = run_series(
        "petstore",
        levels=LEVELS,
        workload=_workload(),
        seed=7,
        faults=_scenario(),
        jobs=2,
    )
    for level in LEVELS:
        assert serial[level].monitor.to_state() == parallel[level].monitor_state
        assert serial[level].resilience == parallel[level].resilience


def test_fault_run_is_repeatable_for_the_same_seed():
    first = run_series(
        "petstore", levels=LEVELS, workload=_workload(), seed=11, faults=_scenario()
    )
    second = run_series(
        "petstore", levels=LEVELS, workload=_workload(), seed=11, faults=_scenario()
    )
    for level in LEVELS:
        assert first[level].monitor.to_state() == second[level].monitor.to_state()
        assert first[level].resilience == second[level].resilience
    # The scenario must actually bite, or the regression proves nothing.
    disturbed = first[PatternLevel.STATEFUL_CACHING].resilience
    assert (
        disturbed["errors"] > 0
        or disturbed["rmi_retries"] > 0
        or disturbed["failovers"] > 0
    )
