"""The availability report: snapshotting, table assembly, rendering,
and the trace-digest counters it feeds."""

import json
from types import SimpleNamespace

from repro.core.patterns import PatternLevel
from repro.faults.report import (
    availability_to_json,
    build_availability_table,
    collect_resilience,
    render_availability_table,
)
from repro.simnet.monitor import TraceSummary
from tests.helpers import tiny_system


def _row(requests=100, errors=0, **extra):
    row = {
        "requests": requests,
        "errors": errors,
        "failovers": 0,
        "rmi_retries": 0,
        "rmi_timeouts": 0,
        "jms_redeliveries": 0,
        "jms_dead_lettered": 0,
        "sync_push_failures": 0,
        "dropped_updates": 0,
        "pool_refusals": 0,
        "server_crashes": 0,
        "staleness_ms": {},
    }
    row.update(extra)
    return row


def _series(rows):
    return {
        level: SimpleNamespace(resilience=row)
        for level, row in zip(PatternLevel, rows)
    }


def test_collect_resilience_on_a_clean_system_is_all_zero():
    env, system = tiny_system()
    data = collect_resilience(system)
    assert data["requests"] == 0
    assert data["errors"] == 0
    assert data["rmi_retries"] == 0
    assert data["staleness_ms"] == {}


def test_build_table_orders_rows_by_level():
    rows = [_row(requests=10 * (index + 1)) for index in range(len(PatternLevel))]
    table = build_availability_table("petstore", _series(rows), scenario="edge-partition")
    assert table.app == "petstore"
    assert table.scenario == "edge-partition"
    assert [int(level) for level, _ in table.rows] == sorted(
        int(level) for level in PatternLevel
    )


def test_render_reports_availability_percentage():
    rows = [_row() for _ in PatternLevel]
    rows[0] = _row(requests=75, errors=25)  # 75% available
    text = render_availability_table(
        build_availability_table("petstore", _series(rows), scenario="edge-partition")
    )
    assert "Availability under fault scenario 'edge-partition' (petstore)" in text
    assert "75.00" in text
    assert "100.00" in text  # untouched configurations
    assert "avail%" in text


def test_render_sums_staleness_in_seconds():
    rows = [_row() for _ in PatternLevel]
    rows[-1] = _row(staleness_ms={"edge1": 1500.0, "edge2": 750.0})
    text = render_availability_table(
        build_availability_table("petstore", _series(rows))
    )
    assert "2.250" in text


def test_availability_json_is_canonical():
    rows = [_row(requests=5) for _ in PatternLevel]
    table = build_availability_table("rubis", _series(rows), scenario="flaky-wan")
    payload = json.loads(availability_to_json([table]))
    assert payload["rubis"]["scenario"] == "flaky-wan"
    configurations = payload["rubis"]["configurations"]
    assert set(configurations) == {f"L{int(level)}" for level in PatternLevel}
    assert configurations["L1"]["requests"] == 5
    assert availability_to_json([table]).endswith("\n")


# ---------------------------------------------------------------------------
# TraceSummary resilience counters
# ---------------------------------------------------------------------------


def test_trace_summary_render_is_unchanged_when_counters_are_zero():
    summary = TraceSummary(records=3, by_kind={"rmi": 3})
    assert summary.render() == "3 calls (rmi=3), 0 wide-area, 0 dropped"


def test_trace_summary_render_appends_nonzero_resilience_counters():
    summary = TraceSummary(
        records=3,
        by_kind={"rmi": 3},
        retries=2,
        timeouts=1,
        failovers=4,
        dropped_updates=5,
    )
    assert summary.render() == (
        "3 calls (rmi=3), 0 wide-area, 0 dropped, "
        "2 retries, 1 timeouts, 4 failovers, 5 dropped updates"
    )
