"""Scenario builders derive edges from the effective topology, and the
data-tier scenarios (``db-leader-crash``, ``db-shard-partition``) are
registered and shaped as documented."""

import pytest

from repro.faults import scenarios
from repro.faults.scenarios import DEFAULT_EDGES, default_edges, scenario
from repro.simnet.topology import TestbedConfig

DURATION, WARMUP = 60_000.0, 10_000.0


# ---------------------------------------------------------------------------
# default_edges follows the topology instead of hard-coding the paper's two
# ---------------------------------------------------------------------------


def test_default_edges_matches_the_paper_testbed():
    config = TestbedConfig()
    derived = default_edges()
    assert derived == tuple(f"edge{i + 1}" for i in range(config.edge_servers))
    # The legacy constant and the derived default agree on the default
    # topology — the constant is no longer load-bearing, just historical.
    assert derived == DEFAULT_EDGES


def test_default_edges_follows_an_overridden_topology():
    config = TestbedConfig(edge_servers=5)
    assert default_edges(config) == ("edge1", "edge2", "edge3", "edge4", "edge5")


def test_builders_accept_edges_none():
    schedule = scenarios.flaky_wan(DURATION, WARMUP, edges=None)
    assert {w.b for w in schedule.loss_windows} == set(default_edges())


# ---------------------------------------------------------------------------
# The data-tier scenarios
# ---------------------------------------------------------------------------


def test_cluster_scenarios_are_registered():
    assert "db-leader-crash" in scenarios.SCENARIOS
    assert "db-shard-partition" in scenarios.SCENARIOS


def test_db_leader_crash_targets_the_main_seat():
    schedule = scenario("db-leader-crash", DURATION, WARMUP)
    assert len(schedule.crashes) == 1
    crash = schedule.crashes[0]
    assert crash.server == "db"
    # Mid-run, inside the measured window.
    assert WARMUP < crash.start < crash.end <= DURATION


def test_db_shard_partition_targets_the_last_edge():
    schedule = scenario(
        "db-shard-partition", DURATION, WARMUP, edges=("edge1", "edge2", "edge3")
    )
    assert len(schedule.partitions) == 1
    partition = schedule.partitions[0]
    assert partition.a == "router"
    assert partition.b == "edge3"


def test_db_shard_partition_follows_default_edges():
    schedule = scenario("db-shard-partition", DURATION, WARMUP)
    assert schedule.partitions[0].b == default_edges()[-1]


def test_db_shard_partition_rejects_an_empty_edge_list():
    with pytest.raises(ValueError):
        scenario("db-shard-partition", DURATION, WARMUP, edges=())


def test_db_leader_crash_ignores_the_edge_list():
    # The crash targets the main database seat, not an edge, so it works
    # even on a (hypothetical) edgeless testbed.
    schedule = scenario("db-leader-crash", DURATION, WARMUP, edges=())
    assert schedule.crashes[0].server == "db"
