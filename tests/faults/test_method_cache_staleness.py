"""Method-cache staleness under faults (the level-6 consistency audit).

Under ``edge-partition`` the WAN link to edge1 goes dark mid-run, so
invalidation pushes to that edge are lost while its local clients keep
reading.  The contract split by mode:

* **strict** (SYNC): the lease and sequence-gap guards must keep the
  audited stale-serve count at exactly zero even though payloads were
  provably lost (``missed_payloads`` > 0 proves the scenario bit);
* **bounded** (ASYNC, the canned level 6): hits inside commit-to-
  invalidation windows are allowed but must be *measured* — the
  availability report carries the staleness window.
"""

from dataclasses import replace

from repro.core.patterns import PatternLevel
from repro.core.policy import level_policy
from repro.experiments.runner import run_configuration
from repro.faults.report import build_availability_table, render_availability_table
from repro.faults.scenarios import scenario
from repro.middleware.descriptors import UpdateMode
from repro.middleware.updates import UPDATE_SUBSCRIBER
from repro.workload.generator import WorkloadConfig

import repro.apps.rubis as rubis

DURATION_MS = 15_000.0
WARMUP_MS = 3_000.0


def _workload():
    # Writer-heavy with short think times: the default 7 s think time
    # means a seven-page bidder script never reaches its bid inside a
    # 15 s window, so no invalidation traffic would exist to disrupt.
    return WorkloadConfig(
        total_rate_per_s=30.0,
        browser_fraction=0.5,
        think_time_ms=1_000.0,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


def _scenario():
    return scenario("edge-partition", DURATION_MS, WARMUP_MS)


def _strict_policy():
    application = rubis.build_application(PatternLevel.METHOD_CACHING)
    policy = level_policy(PatternLevel.METHOD_CACHING, application)
    components = {
        name: cp
        for name, cp in policy.components.items()
        if name != UPDATE_SUBSCRIBER
    }
    return replace(
        policy,
        name="method-cache-strict",
        update_mode=UpdateMode.SYNC,
        components=components,
    )


def test_strict_mode_serves_zero_stale_results_under_partition():
    result = run_configuration(
        "rubis",
        PatternLevel.METHOD_CACHING,
        workload=_workload(),
        seed=13,
        faults=_scenario(),
        policy=_strict_policy(),
    )
    audit = result.resilience["method_cache"]
    # The scenario must actually bite, or the zero proves nothing.
    assert audit["missed_payloads"] > 0
    assert audit["hits"] > 0
    assert audit["stale_serves"] == 0
    # The guards did real work: lost pushes surfaced as sequence gaps
    # and the reconnected cache dropped its entries rather than serve them.
    assert audit["seq_gaps"] > 0
    assert audit["drops"] > 0
    # Strict mode never opens a measured staleness window.
    assert audit["staleness_events"] == 0


def test_bounded_mode_measures_its_staleness_window_under_partition():
    result = run_configuration(
        "rubis",
        PatternLevel.METHOD_CACHING,  # canned level 6 is ASYNC/bounded
        workload=_workload(),
        seed=13,
        faults=_scenario(),
    )
    audit = result.resilience["method_cache"]
    assert audit["hits"] > 0
    assert audit["staleness_events"] > 0
    assert audit["staleness_total_ms"] > 0.0
    assert audit["staleness_max_ms"] > 0.0


def test_availability_table_carries_the_method_cache_line():
    result = run_configuration(
        "rubis",
        PatternLevel.METHOD_CACHING,
        workload=_workload(),
        seed=13,
        faults=_scenario(),
    )
    series = {PatternLevel.METHOD_CACHING: result}
    table = build_availability_table("rubis", series, scenario="edge-partition")
    text = render_availability_table(table)
    assert "method cache:" in text
    assert "staleness=" in text


def test_fault_free_resilience_has_no_method_cache_key_below_level_6():
    result = run_configuration(
        "rubis", PatternLevel.ASYNC_UPDATES, workload=_workload(), seed=13
    )
    assert "method_cache" not in result.resilience
