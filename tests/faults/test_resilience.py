"""Middleware resilience under injected faults: RMI retries/timeouts, JMS
redelivery and dead-lettering, staleness accounting, and crash recovery."""

import pytest

from repro.core.patterns import PatternLevel
from repro.faults.stats import ResilienceStats
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.resilience import RETRYABLE_ERRORS, RmiTimeout, backoff_delay
from repro.middleware.web import WebRequest, http_get
from repro.simnet.network import LinkDown
from tests.helpers import run_process, tiny_system


def _ctx(env, server, session="s1", client="client-main-0"):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("Notes", "test", session, client),
        costs=server.costs,
        trace=server.trace,
    )


# ---------------------------------------------------------------------------
# Pure helpers
# ---------------------------------------------------------------------------


def test_backoff_delay_doubles_then_caps():
    delays = [backoff_delay(50.0, 2000.0, attempt) for attempt in range(1, 9)]
    assert delays == [50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 2000.0, 2000.0]


def test_backoff_delay_rejects_attempt_zero():
    with pytest.raises(ValueError):
        backoff_delay(50.0, 2000.0, 0)


def test_retryable_errors_contains_link_down():
    assert LinkDown in RETRYABLE_ERRORS


def test_staleness_windows_open_once_and_close_once():
    stats = ResilienceStats()
    stats.mark_stale("edge1", 100.0)
    stats.mark_stale("edge1", 150.0)  # no-op: window already open
    stats.mark_fresh("edge1", 400.0)
    assert stats.staleness_ms == {"edge1": 300.0}
    stats.mark_fresh("edge1", 500.0)  # no-op: no open window
    assert stats.staleness_ms == {"edge1": 300.0}


def test_finalize_closes_open_windows_idempotently():
    stats = ResilienceStats()
    stats.mark_stale("edge1", 100.0)
    stats.mark_stale("edge2", 200.0)
    stats.finalize(1000.0)
    stats.finalize(2000.0)  # idempotent: windows already closed
    assert stats.staleness_ms == {"edge1": 900.0, "edge2": 800.0}
    assert stats.total_staleness_ms == 1700.0


def test_to_dict_is_canonical_and_sorted():
    stats = ResilienceStats()
    stats.rmi_retries = 2
    stats.mark_stale("edge2", 0.0)
    stats.mark_stale("edge1", 0.0)
    stats.finalize(10.0)
    snapshot = stats.to_dict()
    assert snapshot["rmi_retries"] == 2
    assert list(snapshot["staleness_ms"]) == ["edge1", "edge2"]


# ---------------------------------------------------------------------------
# RMI timeouts and retries
# ---------------------------------------------------------------------------


def _notes_request(session="s1"):
    return WebRequest(
        page="Notes",
        params={"note_id": 1},
        session_id=session,
        client_node="client-edge1-0",
    )


def test_rmi_retries_exhaust_into_timeout():
    """A partitioned WAN link turns a remote facade call into RmiTimeout
    after the full retry budget, with every retry counted."""
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    edge = system.servers["edge1"]
    link = system.testbed.network.link_between("router", "edge1")

    # Warm run: populates the home cache so the next request reaches the
    # retrying RemoteRef.call path instead of failing in the JNDI lookup.
    response = run_process(env, http_get(env, edge, _notes_request()))
    assert response.status == 200

    link.set_down(True)

    def failing():
        try:
            yield from http_get(env, edge, _notes_request("s2"))
        except RmiTimeout as error:
            return error
        raise AssertionError("expected RmiTimeout")

    error = run_process(env, failing())
    assert error.attempts == edge.costs.rmi_max_retries + 1
    assert error.src == "edge1" and error.dst == "main"
    assert isinstance(error.__cause__, RETRYABLE_ERRORS)
    stats = system.resilience
    assert stats.rmi_retries == edge.costs.rmi_max_retries
    assert stats.rmi_timeouts == 1


def test_rmi_retry_succeeds_after_link_heals():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    edge = system.servers["edge1"]
    link = system.testbed.network.link_between("router", "edge1")
    run_process(env, http_get(env, edge, _notes_request()))  # warm the caches

    link.set_down(True)

    def heal():
        # Backoffs run 50/100/200 ms, so the third attempt (~150 ms in)
        # lands after the link is restored.
        yield env.timeout(120.0)
        link.set_down(False)

    env.process(heal())
    response = run_process(env, http_get(env, edge, _notes_request("s2")))
    assert response.status == 200
    assert response.data == {"text": "note text 1"}
    stats = system.resilience
    assert stats.rmi_retries >= 1
    assert stats.rmi_timeouts == 0


# ---------------------------------------------------------------------------
# JMS redelivery, dead letters and replica staleness
# ---------------------------------------------------------------------------


def test_jms_dead_letters_and_staleness_under_partition():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()
    main = system.main
    link = system.testbed.network.link_between("router", "edge1")
    link.set_down(True)  # never healed: every redelivery to edge1 fails
    ctx = _ctx(env, main)

    def write():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", 1, "unreachable-v2")

    run_process(env, write())  # drains the redelivery backoffs too

    jms = main.jms
    costs = main.costs
    assert jms.redeliveries >= costs.jms_max_redeliveries
    assert any(server == "edge1" for _topic, _msg, server in jms.dead_letters)
    # edge2 is still reachable: its copy of the update must have landed.
    assert all(server != "edge2" for _topic, _msg, server in jms.dead_letters)

    stats = system.resilience
    assert stats.jms_redeliveries == jms.redeliveries
    assert stats.jms_dead_lettered == len(jms.dead_letters)
    assert stats.dropped_updates >= 1
    stats.finalize(env.now)
    assert stats.staleness_ms.get("edge1", 0.0) > 0.0
    assert stats.staleness_ms.get("edge2", 0.0) == 0.0


def test_sync_push_failure_counts_dropped_update():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    main = system.main
    link = system.testbed.network.link_between("router", "edge1")
    link.set_down(True)
    ctx = _ctx(env, main)

    def write():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", 1, "half-delivered")

    run_process(env, write())
    stats = system.resilience
    assert main.update_propagator.failed_pushes >= 1
    assert stats.sync_push_failures == main.update_propagator.failed_pushes
    assert stats.dropped_updates >= 1
    stats.finalize(env.now)
    assert stats.staleness_ms.get("edge1", 0.0) > 0.0


# ---------------------------------------------------------------------------
# Crash semantics
# ---------------------------------------------------------------------------


def test_crash_drains_volatile_state_and_restart_comes_back_cold():
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    system.warm_replicas()
    edge = system.servers["edge1"]
    replica = edge.readonly_container("Note")
    run_process(env, http_get(env, edge, _notes_request("crash-session")))
    assert replica.cached_keys()
    # The tiny servlet is stateless; stash conversational state by hand.
    edge.web_sessions.get("crash-session")["cart"] = ["note-1"]
    assert len(edge.web_sessions) >= 1

    edge.crash()
    assert not edge.available
    assert edge.crashes == 1
    assert system.resilience.server_crashes == 1
    assert not replica.cached_keys()
    assert len(edge.web_sessions) == 0

    edge.restart()
    assert edge.available
    # Cold restart: normal traffic refills the replica cache.
    response = run_process(env, http_get(env, edge, _notes_request("s3")))
    assert response.status == 200
    assert replica.cached_keys()


def test_http_get_refuses_a_crashed_server():
    from repro.middleware.web import ServerUnavailable

    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    edge = system.servers["edge1"]
    edge.crash()

    def probe():
        try:
            yield from http_get(env, edge, _notes_request())
        except ServerUnavailable:
            return "refused"
        raise AssertionError("expected ServerUnavailable")

    assert run_process(env, probe()) == "refused"
