"""The injector flips link/server fault state exactly inside its windows."""

from repro.core.patterns import PatternLevel
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    FaultSchedule,
    LatencySpike,
    LinkPartition,
    LossWindow,
    ServerCrash,
)
from repro.simnet.rng import Streams
from tests.helpers import tiny_system


def _install(env, system, schedule, seed=1234):
    return FaultInjector(schedule, Streams(seed)).install(env, system)


def test_empty_schedule_installs_nothing():
    env, system = tiny_system()
    injector = _install(env, system, FaultSchedule())
    env.run()
    assert env.now == 0.0
    assert injector.partitions_applied == 0
    assert injector.skipped == 0


def test_partition_window_takes_link_down_and_heals_it():
    env, system = tiny_system()
    link = system.testbed.network.link_between("router", "edge1")
    injector = _install(
        env,
        system,
        FaultSchedule(partitions=(LinkPartition("router", "edge1", 10.0, 20.0),)),
    )
    assert link.up and not link.faulted

    env.run(until=15.0)
    assert not link.up
    assert link.faulted
    assert injector.partitions_applied == 1

    env.run(until=25.0)
    assert link.up
    assert not link.faulted


def test_latency_spike_window_sets_and_clears_extra_latency():
    env, system = tiny_system()
    link = system.testbed.network.link_between("router", "edge1")
    injector = _install(
        env,
        system,
        FaultSchedule(
            latency_spikes=(
                LatencySpike(
                    "router", "edge1", 10.0, 20.0, extra_ms=50.0, jitter_ms=5.0
                ),
            )
        ),
    )
    env.run(until=15.0)
    assert link.extra_latency == 50.0
    assert link.latency_jitter == 5.0
    assert link.faulted
    assert injector.latency_spikes_applied == 1

    env.run(until=25.0)
    assert link.extra_latency == 0.0
    assert not link.faulted


def test_loss_window_sets_and_clears_probability():
    env, system = tiny_system()
    link = system.testbed.network.link_between("router", "edge1")
    injector = _install(
        env,
        system,
        FaultSchedule(
            loss_windows=(LossWindow("router", "edge1", 10.0, 20.0, probability=0.5),)
        ),
    )
    env.run(until=15.0)
    assert link.loss_probability == 0.5
    assert link.faulted
    assert injector.loss_windows_applied == 1

    env.run(until=25.0)
    assert link.loss_probability == 0.0
    assert not link.faulted


def test_crash_window_takes_server_down_and_restarts_it():
    env, system = tiny_system()
    edge = system.servers["edge1"]
    injector = _install(
        env, system, FaultSchedule(crashes=(ServerCrash("edge1", 10.0, 20.0),))
    )
    env.run(until=15.0)
    assert not edge.available
    assert edge.crashes == 1
    assert system.resilience.server_crashes == 1
    assert injector.crashes_applied == 1

    env.run(until=25.0)
    assert edge.available


def test_crash_of_undeployed_server_is_skipped_not_an_error():
    # One scenario file must run unchanged across all five configurations,
    # including plans that do not stand up the named server.
    env, system = tiny_system(PatternLevel.CENTRALIZED)
    injector = _install(
        env,
        system,
        FaultSchedule(crashes=(ServerCrash("no-such-server", 10.0, 20.0),)),
    )
    env.run()
    assert injector.skipped == 1
    assert injector.crashes_applied == 0


def test_injector_counts_every_window_once():
    env, system = tiny_system()
    schedule = FaultSchedule(
        partitions=(
            LinkPartition("router", "edge1", 10.0, 20.0),
            LinkPartition("router", "edge2", 30.0, 40.0),
        ),
        latency_spikes=(
            LatencySpike("router", "edge1", 50.0, 60.0, extra_ms=10.0),
        ),
    )
    injector = _install(env, system, schedule)
    env.run()
    assert injector.partitions_applied == 2
    assert injector.latency_spikes_applied == 1
    assert injector.loss_windows_applied == 0
