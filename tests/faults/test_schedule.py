"""Unit tests for fault schedules: validation, JSON/pickle round trips,
and the canned scenario catalogue."""

import pickle

import pytest

from repro.faults.scenarios import SCENARIOS, load_schedule, scenario
from repro.faults.schedule import (
    FaultSchedule,
    LatencySpike,
    LinkPartition,
    LossWindow,
    ServerCrash,
)


def _full_schedule() -> FaultSchedule:
    return FaultSchedule(
        name="everything",
        partitions=(LinkPartition("router", "edge1", 100.0, 200.0),),
        latency_spikes=(
            LatencySpike("router", "edge2", 50.0, 150.0, extra_ms=30.0, jitter_ms=10.0),
        ),
        loss_windows=(LossWindow("router", "edge1", 10.0, 20.0, probability=0.05),),
        crashes=(ServerCrash("edge1", 300.0, 400.0),),
    )


# ---------------------------------------------------------------------------
# Value-object behaviour
# ---------------------------------------------------------------------------


def test_default_schedule_is_empty():
    schedule = FaultSchedule()
    assert schedule.empty
    assert schedule.name == "empty"
    assert schedule.validate() is schedule


def test_any_fault_makes_schedule_non_empty():
    assert not _full_schedule().empty
    assert not FaultSchedule(crashes=(ServerCrash("edge1", 1.0, 2.0),)).empty


def test_json_round_trip_preserves_everything():
    schedule = _full_schedule()
    assert FaultSchedule.from_json(schedule.to_json()) == schedule


def test_pickle_round_trip():
    schedule = _full_schedule()
    assert pickle.loads(pickle.dumps(schedule)) == schedule


def test_from_json_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault-schedule keys"):
        FaultSchedule.from_json({"name": "x", "earthquakes": []})


def test_from_json_defaults_name_to_custom():
    assert FaultSchedule.from_json({}).name == "custom"


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "bad",
    [
        LinkPartition("a", "b", 10.0, 10.0),  # empty window
        LinkPartition("a", "b", 10.0, 5.0),  # end before start
        LinkPartition("a", "b", -1.0, 5.0),  # negative start
        LossWindow("a", "b", 0.0, 1.0, probability=0.0),
        LossWindow("a", "b", 0.0, 1.0, probability=1.5),
        LatencySpike("a", "b", 0.0, 1.0, extra_ms=0.0, jitter_ms=0.0),
        LatencySpike("a", "b", 0.0, 1.0, extra_ms=-1.0),
        ServerCrash("edge1", 5.0, 5.0),
    ],
)
def test_validate_rejects_malformed_faults(bad):
    with pytest.raises(ValueError):
        bad.validate()


def test_schedule_validate_checks_every_fault():
    schedule = FaultSchedule(partitions=(LinkPartition("a", "b", 5.0, 1.0),))
    with pytest.raises(ValueError):
        schedule.validate()


# ---------------------------------------------------------------------------
# Canned scenarios
# ---------------------------------------------------------------------------


def test_canned_catalogue_names():
    assert set(SCENARIOS) == {
        "edge-partition",
        "edge-crash",
        "flaky-wan",
        "latency-spike",
        "db-leader-crash",
        "db-shard-partition",
    }


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_canned_scenarios_fit_the_measured_window(name):
    duration, warmup = 600_000.0, 60_000.0
    schedule = scenario(name, duration, warmup)
    assert schedule.name == name
    assert not schedule.empty
    schedule.validate()
    for fault in (
        *schedule.partitions,
        *schedule.latency_spikes,
        *schedule.loss_windows,
        *schedule.crashes,
    ):
        assert warmup <= fault.start < fault.end <= duration


def test_scenarios_scale_with_duration():
    short = scenario("edge-partition", 40_000.0, 10_000.0).partitions[0]
    long = scenario("edge-partition", 1_200_000.0, 120_000.0).partitions[0]
    assert short.end <= 40_000.0
    assert long.end - long.start > 10 * (short.end - short.start)


def test_unknown_scenario_name_raises():
    with pytest.raises(ValueError, match="unknown fault scenario"):
        scenario("meteor-strike", 1000.0)


# ---------------------------------------------------------------------------
# --faults argument resolution
# ---------------------------------------------------------------------------


def test_load_schedule_resolves_canned_names():
    schedule = load_schedule("edge-crash", 100_000.0, 10_000.0)
    assert schedule.name == "edge-crash"
    assert schedule.crashes


def test_load_schedule_reads_json_files(tmp_path):
    import json

    path = tmp_path / "my-faults.json"
    path.write_text(json.dumps(_full_schedule().to_json()))
    assert load_schedule(str(path), 100_000.0) == _full_schedule()


def test_load_schedule_unknown_name_is_an_error():
    with pytest.raises(ValueError, match="unknown fault scenario"):
        load_schedule("not-a-scenario", 100_000.0)
