"""Shared pytest fixtures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.simnet.kernel import Environment
from repro.simnet.network import Network
from repro.simnet.rng import Streams
from repro.simnet.topology import TestbedConfig, build_testbed


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def streams():
    return Streams(1234)


@pytest.fixture
def network(env):
    net = Network(env)
    net.add_node("a", cpus=2)
    net.add_node("b", cpus=2)
    net.add_node("c", cpus=2)
    net.add_link("a", "b", latency=5.0, bandwidth=10_000.0)
    net.add_link("b", "c", latency=100.0, bandwidth=12_500.0)
    return net


@pytest.fixture
def testbed(env):
    return build_testbed(env, TestbedConfig())
