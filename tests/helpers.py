"""Shared test helpers: a minimal application for middleware-level tests.

The "tiny" application has one table (``notes``), one read-mostly entity
bean, one façade, and one servlet — just enough to exercise every
container code path with precise, countable expectations.
"""

from __future__ import annotations

from repro.core.distribution import DeployedSystem, distribute
from repro.core.patterns import PatternLevel
from repro.middleware.descriptors import (
    ApplicationDescriptor,
    ComponentDescriptor,
    ComponentKind,
    Persistence,
    QueryCacheDescriptor,
    ReadMostlyDescriptor,
    RefreshMode,
    TxAttribute,
)
from repro.middleware.ejb import EntityBean, Servlet, StatelessSessionBean
from repro.middleware.entity import FinderSpec
from repro.middleware.web import Response
from repro.rdbms.engine import Database
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.types import INTEGER, TEXT
from repro.simnet.kernel import Environment
from repro.simnet.monitor import Trace
from repro.simnet.topology import TestbedConfig, build_testbed

NOTE_COUNT = 12


class NoteBean(EntityBean):
    """A trivial read-mostly entity."""

    FINDERS = {
        "find_by_author": FinderSpec("SELECT * FROM notes WHERE author = ?"),
    }

    def get_text(self, ctx):
        return self.state["text"]

    def set_text(self, ctx, text):
        self.set_field("text", text)

    def bad_write(self, ctx):
        # Used to verify read-only replicas refuse mutation.
        self.set_field("text", "mutated")


class NotesFacadeBean(StatelessSessionBean):
    """Façade over the Note entity plus one aggregate query."""

    def read_note(self, ctx, note_id):
        home = yield from ctx.lookup("Note")
        text = yield from home.entity(note_id).call(ctx, "get_text")
        return text

    def write_note(self, ctx, note_id, text):
        home = yield from ctx.server.lookup(ctx, "Note", for_update=True)
        yield from home.entity(note_id).call(ctx, "set_text", text)
        return True

    def create_note(self, ctx, note_id, author, text):
        home = yield from ctx.server.lookup(ctx, "Note", for_update=True)
        key = yield from home.call(
            ctx, "create", {"id": note_id, "author": author, "text": text}
        )
        return key

    def notes_of(self, ctx, author):
        rows = yield from ctx.server.cached_query(ctx, "tiny.notes_of", (author,))
        return rows


class NotesServlet(Servlet):
    def handle(self, ctx, request):
        facade = yield from ctx.lookup("NotesFacade")
        text = yield from facade.call(ctx, "read_note", request.param("note_id"))
        return Response(1_000, data={"text": text})


def tiny_application(read_mostly: bool = True) -> ApplicationDescriptor:
    app = ApplicationDescriptor(name="tiny")
    app.add_schema(
        TableSchema(
            "notes",
            [Column("id", INTEGER), Column("author", TEXT), Column("text", TEXT)],
            primary_key="id",
            indexes=["author"],
        )
    )
    app.add(
        ComponentDescriptor(
            name="Note",
            kind=ComponentKind.ENTITY,
            impl=NoteBean,
            table="notes",
            persistence=Persistence.CMP,
            remote_interface=False,
            read_mostly=(
                ReadMostlyDescriptor(updater="Note", refresh_mode=RefreshMode.PUSH)
                if read_mostly
                else None
            ),
        )
    )
    app.add(
        ComponentDescriptor(
            name="NotesFacade",
            kind=ComponentKind.STATELESS_SESSION,
            impl=NotesFacadeBean,
            remote_interface=True,
            edge_from_level=3,
            # Only consulted at level 6; levels 1-5 ignore the annotation.
            cached_methods=("notes_of", "read_note"),
        )
    )
    app.add(
        ComponentDescriptor(
            name="servlet.Notes",
            kind=ComponentKind.SERVLET,
            impl=NotesServlet,
            remote_interface=False,
            tx_attribute=TxAttribute.NOT_SUPPORTED,
        )
    )
    app.map_page("Notes", "servlet.Notes")
    app.add_query_cache(
        QueryCacheDescriptor(
            query_id="tiny.notes_of",
            sql="SELECT id, text FROM notes WHERE author = ?",
            invalidated_by=("notes",),
            refresh_mode=RefreshMode.PUSH,
            key_of_update=lambda event: (
                (event.state.get("author"),) if event.state else None
            ),
        )
    )
    app.validate()
    return app


def tiny_database() -> Database:
    database = Database("tiny")
    database.create_table(
        TableSchema(
            "notes",
            [Column("id", INTEGER), Column("author", TEXT), Column("text", TEXT)],
            primary_key="id",
            indexes=["author"],
        )
    )
    for note_id in range(1, NOTE_COUNT + 1):
        database.execute(
            "INSERT INTO notes (id, author, text) VALUES (?, ?, ?)",
            (note_id, f"author{note_id % 3}", f"note text {note_id}"),
        )
    return database


def tiny_system(
    level=PatternLevel.STATEFUL_CACHING,
    read_mostly: bool = True,
    with_trace: bool = False,
) -> "tuple[Environment, DeployedSystem]":
    """A fully deployed tiny application on the standard testbed."""
    env = Environment()
    testbed = build_testbed(env, TestbedConfig())
    trace = Trace() if with_trace else None
    system = distribute(
        env,
        testbed,
        tiny_application(read_mostly=read_mostly),
        PatternLevel(level),
        tiny_database(),
        trace=trace,
    )
    return env, system


def run_process(env: Environment, generator):
    """Run ``generator`` to completion; returns its value."""
    process = env.process(generator)
    env.run()
    if not process.triggered:
        raise AssertionError("process did not finish")
    return process.value
