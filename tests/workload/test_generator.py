"""Tests for the client population and load generation (§3.3)."""

import pytest

from repro.core.patterns import PatternLevel
from repro.core.usage import ScriptedPattern
from repro.simnet.rng import Streams
from repro.workload.generator import LoadGenerator, WorkloadConfig
from tests.helpers import tiny_system


def _notes_pattern(length=4):
    return ScriptedPattern(
        "notes",
        ["Notes"] * length,
        params_for=lambda streams, page, index: {
            "note_id": streams.randint("note-pick", 1, 12)
        },
    )


def _generator(level=PatternLevel.STATEFUL_CACHING, **config_overrides):
    env, system = tiny_system(level)
    system.warm_replicas()
    config = WorkloadConfig(
        total_rate_per_s=6.0,
        browser_fraction=0.8,
        think_time_ms=2_000.0,
        duration_ms=20_000.0,
        warmup_ms=4_000.0,
    )
    for key, value in config_overrides.items():
        setattr(config, key, value)
    generator = LoadGenerator(
        system,
        Streams(77),
        _notes_pattern(),
        _notes_pattern(2),
        config=config,
        writer_group_name="writer",
    )
    return env, system, generator


def test_config_validation():
    with pytest.raises(ValueError):
        WorkloadConfig(browser_fraction=1.5)
    with pytest.raises(ValueError):
        WorkloadConfig(total_rate_per_s=0.0)


def test_clients_per_group_math():
    env, system, generator = _generator()
    counts = generator.clients_per_group()
    # 6 req/s over 3 groups = 2 req/s per group; 2 x 2 s think = 4 clients.
    assert counts["browser"] == 3  # 80% of 4, rounded
    assert counts["writer"] == 1


def test_population_spans_all_client_machines():
    env, system, generator = _generator()
    clients = generator.build()
    machines = {client.client_node for client in clients}
    assert len(machines) == 9  # 3 machines x 3 groups
    groups = {client.group for client in clients}
    assert groups == {
        "local-browser",
        "local-writer",
        "remote-browser",
        "remote-writer",
    }


def test_build_is_idempotent():
    env, system, generator = _generator()
    assert generator.build() is generator.build()


def test_achieved_rate_approximates_target():
    env, system, generator = _generator()
    generator.run(env)
    assert generator.achieved_rate_per_s() == pytest.approx(6.0, rel=0.25)


def test_soft_delay_keeps_rate_under_slow_responses():
    """Soft delays make the request rate response-time independent."""
    fast_env, _s, fast_gen = _generator(level=PatternLevel.STATEFUL_CACHING)
    fast_gen.run(fast_env)
    slow_env, _s, slow_gen = _generator(level=PatternLevel.CENTRALIZED)
    slow_gen.run(slow_env)
    # Centralized remote responses are ~400 ms slower, but the rate holds.
    assert slow_gen.achieved_rate_per_s() == pytest.approx(
        fast_gen.achieved_rate_per_s(), rel=0.15
    )


def test_monitor_receives_observations_after_warmup():
    env, system, generator = _generator()
    monitor = generator.run(env)
    assert monitor.groups()
    for group in monitor.groups():
        assert monitor.session_mean(group) > 0
    assert monitor.discarded_warmup > 0


def test_clients_stop_at_duration():
    env, system, generator = _generator(duration_ms=10_000.0)
    generator.run(env)
    # All sessions wound down shortly after the configured duration.
    assert env.now < 10_000.0 + 5_000.0
    assert all(client.requests_sent > 0 for client in generator.clients)
