"""Open-loop workload engine: arrivals, scenarios, Markov sessions."""

import pytest

from repro.core.usage import PatternError, WeightedPattern
from repro.simnet.rng import Streams
from repro.workload.openloop import (
    OpenLoopConfig,
    OpenLoopGenerator,
    TransitionMatrixPattern,
)


# -- configuration ----------------------------------------------------------

def test_config_validates_arrival_and_scenario():
    with pytest.raises(ValueError):
        OpenLoopConfig(arrival="uniform")
    with pytest.raises(ValueError):
        OpenLoopConfig(scenario="tsunami")
    with pytest.raises(ValueError):
        OpenLoopConfig(session_rate_per_s=0.0)
    with pytest.raises(ValueError):
        OpenLoopConfig(pareto_alpha=1.0)
    with pytest.raises(ValueError):
        OpenLoopConfig(flash_start=0.7, flash_end=0.3)
    with pytest.raises(ValueError):
        OpenLoopConfig(diurnal_amplitude=1.0)
    with pytest.raises(ValueError):
        OpenLoopConfig(max_sessions=-1)


def test_rate_factor_scenarios():
    steady = OpenLoopConfig(scenario="steady", duration_ms=100_000.0)
    assert steady.rate_factor(0.0) == 1.0
    assert steady.rate_factor(99_000.0) == 1.0

    flash = OpenLoopConfig(
        scenario="flash-crowd",
        duration_ms=100_000.0,
        flash_start=0.4,
        flash_end=0.6,
        flash_multiplier=8.0,
    )
    assert flash.rate_factor(10_000.0) == 1.0
    assert flash.rate_factor(50_000.0) == 8.0
    assert flash.rate_factor(60_000.0) == 1.0

    diurnal = OpenLoopConfig(
        scenario="diurnal", duration_ms=100_000.0, diurnal_amplitude=0.5
    )
    assert diurnal.rate_factor(0.0) == pytest.approx(1.0)
    assert diurnal.rate_factor(25_000.0) == pytest.approx(1.5)
    assert diurnal.rate_factor(75_000.0) == pytest.approx(0.5)
    assert min(diurnal.rate_factor(t) for t in range(0, 100_000, 500)) > 0.0


# -- arrival draws ----------------------------------------------------------

class _GapProbe(OpenLoopGenerator):
    """Expose the gap sampler without standing up a deployed system."""

    def __init__(self, config):
        self.config = config


@pytest.mark.parametrize("arrival", ["poisson", "pareto", "lognormal"])
def test_gap_draws_have_configured_mean(arrival):
    config = OpenLoopConfig(arrival=arrival, session_rate_per_s=10.0)
    probe = _GapProbe(config)
    rng = Streams(7).get("gap-test")
    n = 200_000
    gaps = [probe._draw_gap(rng, config.mean_gap_ms) for _ in range(n)]
    assert min(gaps) >= 0.0
    observed = sum(gaps) / n
    # Pareto at alpha=1.5 converges slowly; the others are tight.
    tolerance = 0.25 if arrival == "pareto" else 0.05
    assert observed == pytest.approx(config.mean_gap_ms, rel=tolerance)


def test_pareto_gaps_are_heavier_tailed_than_poisson():
    rng = Streams(11).get("tail-test")
    poisson = _GapProbe(OpenLoopConfig(arrival="poisson"))
    pareto = _GapProbe(OpenLoopConfig(arrival="pareto", pareto_alpha=1.5))
    n = 100_000
    mean = 100.0
    p_draws = sorted(poisson._draw_gap(rng, mean) for _ in range(n))
    h_draws = sorted(pareto._draw_gap(rng, mean) for _ in range(n))
    # Same mean, but the heavy tail's extreme quantile is far larger.
    assert h_draws[-10] > 5 * p_draws[-10]


# -- transition-matrix sessions --------------------------------------------

def _base_pattern():
    return WeightedPattern(
        name="toy",
        length=6,
        weights={"home": 4.0, "list": 3.0, "item": 2.0, "buy": 1.0},
        first_page="home",
        follows={"item": "list"},
    )


def test_markov_sessions_start_at_first_page_and_honor_follows():
    pattern = TransitionMatrixPattern(_base_pattern(), mean_length=6.0)
    streams = Streams(42)
    for index in range(200):
        visits = pattern.session(streams, index)
        assert visits[0].page == "home"
        assert len(visits) <= pattern.max_length
        for prev, this in zip(visits, visits[1:]):
            if this.page == "item":
                assert prev.page == "list"


def test_markov_mean_session_length_matches_target():
    pattern = TransitionMatrixPattern(_base_pattern(), mean_length=6.0)
    streams = Streams(13)
    lengths = [len(pattern.session(streams, i)) for i in range(4000)]
    mean = sum(lengths) / len(lengths)
    # Geometric continuation around the target mean; follows-insertions
    # and the hard cap skew it slightly, so the window is generous.
    assert 4.5 < mean < 7.5


def test_markov_damps_self_transitions():
    pattern = TransitionMatrixPattern(_base_pattern(), self_loop=0.0)
    streams = Streams(99)
    for index in range(300):
        visits = pattern.session(streams, index)
        for prev, this in zip(visits, visits[1:]):
            assert this.page != prev.page


def test_markov_rejects_degenerate_mean():
    with pytest.raises(PatternError):
        TransitionMatrixPattern(_base_pattern(), mean_length=1.0)
    with pytest.raises(PatternError):
        TransitionMatrixPattern(_base_pattern(), self_loop=1.5)


# -- end-to-end runs --------------------------------------------------------

def _run_openloop(config, seed=2003, **kwargs):
    from repro.experiments.runner import run_configuration

    return run_configuration(
        "rubis", 5, seed=seed, openloop=config, **kwargs
    )


def _small_config(**overrides):
    base = dict(
        session_rate_per_s=3.0,
        duration_ms=8_000.0,
        warmup_ms=1_000.0,
        think_time_ms=2_000.0,
    )
    base.update(overrides)
    return OpenLoopConfig(**base)


def test_openloop_run_accounts_for_every_session():
    result = _run_openloop(_small_config())
    generator = result.generator
    assert generator.arrivals > 0
    assert generator.admitted == generator.arrivals - generator.dropped_sessions
    # env.run() drains to completion: nothing left active.
    assert generator.active == 0
    assert generator.completions == generator.admitted
    assert generator.peak_active >= 1
    assert generator.requests_sent > 0
    assert generator.total_requests() == generator.requests_sent
    assert result.monitor.groups()


def test_openloop_admission_cap_drops_sessions():
    result = _run_openloop(
        _small_config(session_rate_per_s=20.0, max_sessions=5)
    )
    generator = result.generator
    assert generator.dropped_sessions > 0
    assert generator.peak_active <= 5
    assert generator.admitted + generator.dropped_sessions == generator.arrivals


def test_openloop_dropped_sessions_reach_trace_summary():
    result = _run_openloop(
        _small_config(session_rate_per_s=20.0, max_sessions=5),
        with_trace=True,
    )
    summary = result.trace_summary
    assert summary.dropped_sessions == result.generator.dropped_sessions
    assert "dropped sessions" in summary.render()


def test_openloop_metrics_expose_session_health():
    result = _run_openloop(
        _small_config(session_rate_per_s=20.0, max_sessions=5),
        with_metrics=True,
    )
    metrics = result.metrics
    generator = result.generator
    assert metrics.value("workload.sessions_arrived") == generator.arrivals
    assert metrics.value("workload.sessions_completed") == generator.completions
    assert metrics.value("workload.sessions_dropped") == generator.dropped_sessions
    assert metrics.value("workload.sessions_active") == 0.0
    assert metrics.value("workload.sessions_peak") == float(generator.peak_active)


def test_openloop_runs_are_deterministic():
    first = _run_openloop(_small_config(arrival="pareto", scenario="flash-crowd"))
    second = _run_openloop(_small_config(arrival="pareto", scenario="flash-crowd"))
    assert first.monitor.to_state() == second.monitor.to_state()
    assert first.generator.arrivals == second.generator.arrivals
    assert first.generator.requests_sent == second.generator.requests_sent


def test_flash_crowd_concentrates_arrivals():
    steady = _run_openloop(_small_config(duration_ms=20_000.0))
    flash = _run_openloop(
        _small_config(
            duration_ms=20_000.0,
            scenario="flash-crowd",
            flash_multiplier=10.0,
        )
    )
    # A 10x window over 20% of the run roughly triples total arrivals.
    assert flash.generator.arrivals > 1.8 * steady.generator.arrivals


def test_openloop_cell_is_picklable_and_parallel_consistent():
    """jobs=1 vs jobs=2 produce identical serialized cell results."""
    from repro.experiments.parallel import run_cells

    config = _small_config()
    serial = run_cells([("rubis", 5)], jobs=1, openloop=config, seed=2003)
    parallel = run_cells([("rubis", 5)], jobs=2, openloop=config, seed=2003)
    key = ("rubis", 5)
    assert serial[key].monitor_state == parallel[key].monitor_state
    assert serial[key].total_requests == parallel[key].total_requests
    assert serial[key].resilience == parallel[key].resilience
