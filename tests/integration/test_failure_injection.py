"""Failure injection: packet loss, lock contention, slow replicas.

The paper's testbed is loss-free and lightly loaded; these tests push
the substrate outside that envelope to verify that failures surface
loudly and state stays consistent.
"""

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from repro.rdbms.transactions import TransactionError
from repro.simnet.router import LossElement, PacketLoss
from repro.simnet.rng import Streams
from tests.helpers import run_process, tiny_system


def _ctx(env, server, session="fi"):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("Notes", "test", session, "client-main-0"),
        costs=server.costs,
    )


def _inject_loss(system, a, b, probability, streams):
    """Insert a loss element at the head of the a->b link direction."""
    network = system.testbed.network
    link = network.route(a, b)[0]
    chain = link.chain(a, b)
    loss = LossElement(probability, streams, stream_name=f"loss-{a}-{b}")
    chain.elements.insert(0, loss)
    return loss


def test_packet_loss_surfaces_as_exception():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    system.warm_replicas()
    streams = Streams(3)
    loss = _inject_loss(system, "edge1", "router", probability=1.0, streams=streams)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        facade = yield from edge.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "read_note", 1)

    with pytest.raises(PacketLoss):
        run_process(env, proc())
    assert loss.dropped >= 1


def test_zero_loss_probability_is_harmless():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    streams = Streams(4)
    _inject_loss(system, "edge1", "router", probability=0.0, streams=streams)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        facade = yield from edge.lookup(ctx, "NotesFacade")
        text = yield from facade.call(ctx, "read_note", 1)
        return text

    assert run_process(env, proc()) == "note text 1"


def test_lock_timeout_aborts_cleanly():
    """A writer stuck behind a never-releasing lock times out; its
    transaction rolls back and the database stays consistent."""
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    system.db_server.locks.timeout_ms = 2_000.0
    main = system.main
    database = system.db_server.database
    outcome = {}

    def holder():
        # Acquire a lock through a raw db session and never release it.
        session = system.db_server.open_session()
        system.db_server.begin(session)
        result = yield from system.db_server.execute(
            session, "UPDATE notes SET text = 'held' WHERE id = 1"
        )
        outcome["held"] = result.affected
        yield env.timeout(60_000.0)

    def contender():
        yield env.timeout(100.0)
        ctx = _ctx(env, main, session="contender")
        facade = yield from main.lookup(ctx, "NotesFacade")
        try:
            yield from facade.call(ctx, "write_note", 1, "contender-value")
        except TransactionError as error:
            outcome["error"] = str(error)

    env.process(holder())
    env.process(contender())
    env.run(until=10_000.0)
    assert outcome["held"] == 1
    assert "timeout" in outcome["error"]
    # The contender's transaction rolled back: its value never landed.
    assert database.execute("SELECT text FROM notes WHERE id = 1").scalar() == "held"


def test_concurrent_writers_serialize_correctly():
    """Two writers to the same note: both commit, the later one wins, and
    every replica converges to the winner."""
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    main = system.main
    order = []

    def writer(name, delay):
        yield env.timeout(delay)
        ctx = _ctx(env, main, session=name)
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", 5, name)
        order.append((env.now, name))

    env.process(writer("writer-a", 0.0))
    env.process(writer("writer-b", 1.0))
    env.run()
    assert len(order) == 2
    winner = max(order)[1]
    database = system.db_server.database
    assert database.execute("SELECT text FROM notes WHERE id = 5").scalar() == winner
    for server_name in ("edge1", "edge2"):
        replica = system.servers[server_name].readonly_container("Note")
        assert replica._cache[5]["text"] == winner


def test_bean_exception_does_not_poison_the_container():
    """After a failed invocation, the pooled instance keeps serving."""
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        try:
            yield from facade.call(ctx, "read_note", 9_999)  # missing row
        except Exception:
            pass
        text = yield from facade.call(ctx, "read_note", 1)
        return text

    assert run_process(env, proc()) == "note text 1"
