"""The sharded + raft-replicated data tier, end to end.

Scaled-down versions of the acceptance runs: a 3-shard / 3-replica RUBiS
cell under ``db-leader-crash`` must re-elect and catch up; a partition
must make stale-local reads measurably stale while quorum reads stay
fresh; and all of it must be byte-identical between ``--jobs 1`` and
``--jobs 4`` and invisible to policies without a ``data_tier`` block.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.core.patterns import PatternLevel
from repro.core.policy import load_policy
from repro.experiments.calibration import default_workload
from repro.experiments.runner import run_configuration, run_series
from repro.faults.report import render_availability_table, build_availability_table
from repro.faults.scenarios import scenario
from repro.obs.metrics import MetricsRegistry, collect_system_metrics
from repro.simnet.topology import TopologyOverrides

DURATION_MS = 30_000.0
WARMUP_MS = 6_000.0
WORKLOAD = default_workload(duration_ms=DURATION_MS, warmup_ms=WARMUP_MS)
EDGES = TopologyOverrides(edges=3)
EDGE_NAMES = ("edge1", "edge2", "edge3")
POLICY_FILE = (
    Path(__file__).resolve().parents[2] / "policies" / "sharded-replicated.json"
)


def _crash_schedule():
    return scenario("db-leader-crash", DURATION_MS, WARMUP_MS, edges=EDGE_NAMES)


def _partition_schedule():
    return scenario("db-shard-partition", DURATION_MS, WARMUP_MS, edges=EDGE_NAMES)


@pytest.fixture(scope="module")
def sharded_policy():
    return load_policy(str(POLICY_FILE))


@pytest.fixture(scope="module")
def crash_run(sharded_policy):
    """One serial run under db-leader-crash, shared by several tests."""
    return run_configuration(
        "rubis",
        PatternLevel.STATEFUL_CACHING,
        workload=WORKLOAD,
        seed=31,
        policy=sharded_policy,
        topology=EDGES,
        faults=_crash_schedule(),
    )


@pytest.fixture(scope="module")
def partition_run(sharded_policy):
    return run_configuration(
        "rubis",
        PatternLevel.STATEFUL_CACHING,
        workload=WORKLOAD,
        seed=31,
        policy=sharded_policy,
        topology=EDGES,
        faults=_partition_schedule(),
    )


# ---------------------------------------------------------------------------
# The cluster exists, shards and replicates as declared
# ---------------------------------------------------------------------------


def test_cluster_matches_the_policy(crash_run, sharded_policy):
    cluster = crash_run.system.cluster
    assert cluster is not None
    tier = sharded_policy.data_tier
    assert len(cluster.groups) == tier.shard_count
    for group in cluster.groups:
        assert len(group.members) == tier.replication_factor
        # Every group finished the run with a live leader.
        assert group.leader is not None and group.leader.alive


def test_sharding_actually_partitions_the_rows(crash_run):
    """Each sharded table's rows are split, not copied; global tables are
    copied in full to every member."""
    cluster = crash_run.system.cluster
    for table in ("items", "bids", "comments"):
        per_shard = []
        for group in cluster.groups:
            counts = {
                sum(1 for _ in member.database.table(table).scan(copy=False))
                for member in group.members
                if member.applied_index >= group.commit_index
            }
            assert len(counts) == 1, f"caught-up replicas of {table} diverge"
            per_shard.append(counts.pop())
        assert sum(per_shard) > 0
        assert all(count < sum(per_shard) for count in per_shard)


# ---------------------------------------------------------------------------
# Leader crash: election, failover, catch-up
# ---------------------------------------------------------------------------


def test_leader_crash_forces_reelection_and_catchup(crash_run):
    stats = crash_run.system.cluster.stats
    assert stats.elections_won >= 1
    assert stats.quorum_commits > 0
    # The restarted main-seat members replay what they missed.
    assert stats.catchup_entries >= 1
    # Replicated state machines never diverge: every applied entry
    # executed cleanly on every member.
    assert stats.apply_errors == 0


def test_cluster_counters_reach_the_resilience_snapshot(crash_run):
    snapshot = crash_run.resilience
    assert "cluster" in snapshot
    assert snapshot["cluster"] == crash_run.system.cluster.stats.to_dict()


def test_cluster_counters_reach_metrics_and_tables(crash_run):
    registry = MetricsRegistry()
    collect_system_metrics(registry, crash_run.system, generator=crash_run.generator)
    state = registry.to_state()
    assert state["counters"]["cluster.elections_won"] >= 1
    assert state["gauges"]["cluster.shards"] == 3.0
    assert state["gauges"]["cluster.replication_factor"] == 3.0

    table = build_availability_table(
        "rubis",
        {PatternLevel.STATEFUL_CACHING: crash_run},
        scenario="db-leader-crash",
    )
    rendered = render_availability_table(table)
    assert "data tier:" in rendered
    assert "elections=" in rendered


# ---------------------------------------------------------------------------
# Read modes: stale-local staleness is real, quorum reads never stale
# ---------------------------------------------------------------------------


def test_partition_makes_stale_local_reads_stale(partition_run):
    stats = partition_run.system.cluster.stats
    assert stats.reads_stale_local > 0
    assert stats.stale_reads_served > 0
    assert stats.staleness_ms > 0.0
    assert stats.reads_quorum == 0


def test_quorum_reads_report_zero_staleness(sharded_policy):
    quorum_policy = dataclasses.replace(
        sharded_policy,
        data_tier=dataclasses.replace(sharded_policy.data_tier, read_mode="quorum"),
    )
    result = run_configuration(
        "rubis",
        PatternLevel.STATEFUL_CACHING,
        workload=WORKLOAD,
        seed=31,
        policy=quorum_policy,
        topology=EDGES,
        faults=_partition_schedule(),
    )
    stats = result.system.cluster.stats
    assert stats.reads_quorum > 0
    assert stats.reads_stale_local == 0
    assert stats.stale_reads_served == 0
    assert stats.staleness_ms == 0.0


# ---------------------------------------------------------------------------
# Determinism and the legacy byte-identity contract
# ---------------------------------------------------------------------------


def test_cluster_run_identical_serial_vs_four_workers(sharded_policy, crash_run):
    parallel = run_series(
        "rubis",
        workload=WORKLOAD,
        seed=31,
        jobs=4,
        policy=sharded_policy,
        topology=EDGES,
        faults=_crash_schedule(),
    )
    level = sharded_policy.effective_level()
    assert crash_run.monitor.to_state() == parallel[level].monitor_state
    assert crash_run.resilience == parallel[level].resilience
    # The cluster counters themselves — elections, staleness and all —
    # are part of the byte-identity bar.
    assert (
        crash_run.system.cluster.stats.to_dict()
        == parallel[level].resilience["cluster"]
    )


def test_policy_without_data_tier_builds_no_cluster():
    result = run_configuration(
        "rubis",
        PatternLevel.STATEFUL_CACHING,
        workload=default_workload(duration_ms=15_000.0, warmup_ms=3_000.0),
        seed=31,
    )
    assert result.system.cluster is None
    assert "cluster" not in result.resilience
    registry = MetricsRegistry()
    collect_system_metrics(registry, result.system, generator=result.generator)
    assert not any(
        name.startswith("cluster.") for name in registry.to_state()["counters"]
    )
