"""Integration tests for the replication consistency guarantees.

§4.3 claims *zero staleness* for the blocking push protocol: "a read
operation that arrives after a previous write has committed, will always
read the correct value".  §4.5 trades that for asynchronous delivery
with bounded staleness.  These tests verify both, including under
property-based random interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from tests.helpers import run_process, tiny_system


def _ctx(env, server, session="cons"):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("Notes", "test", session, "client-main-0"),
        costs=server.costs,
    )


def _write(env, system, note_id, text):
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", note_id, text)

    return proc()


def _read(env, system, server_name, note_id):
    server = system.servers[server_name]
    ctx = _ctx(env, server)

    def proc():
        facade = yield from server.lookup(ctx, "NotesFacade")
        text = yield from facade.call(ctx, "read_note", note_id)
        return text

    return proc()


def test_sync_zero_staleness_single_writer():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()

    def scenario():
        for version in range(5):
            yield from _write(env, system, 1, f"v{version}")
            for server_name in ("main", "edge1", "edge2"):
                text = yield from _read(env, system, server_name, 1)
                assert text == f"v{version}", (server_name, version, text)
        return True

    assert run_process(env, scenario()) is True


def test_async_updates_converge():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()

    def scenario():
        yield from _write(env, system, 2, "final")

    run_process(env, scenario())  # run() drains in-flight deliveries
    for server_name in ("edge1", "edge2"):
        replica = system.servers[server_name].readonly_container("Note")
        assert replica._cache[2]["text"] == "final"


def test_async_staleness_is_bounded_by_propagation():
    """A read racing the async push may see the old value, but only within
    the one-way propagation window after commit."""
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()
    observations = []

    def writer():
        yield from _write(env, system, 3, "new")
        observations.append(("committed", env.now))

    def racing_reader():
        yield env.timeout(5.0)  # shortly after commit, before delivery
        text = yield from _read(env, system, "edge1", 3)
        observations.append(("early-read", text))
        yield env.timeout(500.0)  # well past the WAN delay
        text = yield from _read(env, system, "edge1", 3)
        observations.append(("late-read", text))

    env.process(writer())
    env.process(racing_reader())
    env.run()
    readings = dict((k, v) for k, v in observations if k.endswith("read"))
    assert readings["late-read"] == "new"
    # The early read may legitimately be stale — but only the previous value.
    assert readings["early-read"] in ("new", "note text 3")


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["write", "read-edge1", "read-edge2", "read-main"]),
            st.integers(min_value=1, max_value=4),  # note id
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=25, deadline=None)
def test_sync_zero_staleness_random_interleavings(operations):
    """Sequential consistency under arbitrary operation orders (level 3)."""
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    last_written = {}

    def scenario():
        for index, (op, note_id) in enumerate(operations):
            if op == "write":
                value = f"val-{index}"
                yield from _write(env, system, note_id, value)
                last_written[note_id] = value
            else:
                server_name = op.split("-", 1)[1]
                text = yield from _read(env, system, server_name, note_id)
                expected = last_written.get(note_id, f"note text {note_id}")
                assert text == expected, (op, note_id, text, expected)
        return True

    assert run_process(env, scenario()) is True


@given(
    writes=st.lists(
        st.integers(min_value=1, max_value=3), min_size=1, max_size=8
    )
)
@settings(max_examples=15, deadline=None)
def test_async_eventual_consistency_random_writes(writes):
    """After quiescence, every replica converges to the final value."""
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()
    final = {}

    def scenario():
        for index, note_id in enumerate(writes):
            value = f"w{index}"
            yield from _write(env, system, note_id, value)
            final[note_id] = value

    run_process(env, scenario())  # drains every delivery
    for note_id, value in final.items():
        for server_name in ("edge1", "edge2"):
            replica = system.servers[server_name].readonly_container("Note")
            assert replica._cache[note_id]["text"] == value


def test_database_is_always_authoritative():
    """Whatever replicas show, the database holds the committed truth."""
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()

    def scenario():
        yield from _write(env, system, 4, "authoritative")

    run_process(env, scenario())
    db_value = system.db_server.database.execute(
        "SELECT text FROM notes WHERE id = 4"
    ).scalar()
    assert db_value == "authoritative"
