"""Availability: distribution gives clients several entry points (§1).

"Cacheable components can be positioned in edge nodes ... improving not
only client perceived latency, but also overall service availability
since client requests can utilize several entry points into the
service."  These tests fail an edge server mid-run and verify that its
clients keep being served through the main entry point.
"""

import pytest

from repro.core.patterns import PatternLevel
from repro.core.usage import ScriptedPattern
from repro.middleware.web import CONNECT_TIMEOUT_MS, ServerUnavailable, WebRequest, http_get
from repro.simnet.monitor import ResponseTimeMonitor
from repro.simnet.rng import Streams
from repro.workload.client import Client
from tests.helpers import run_process, tiny_system


def _browse_pattern():
    return ScriptedPattern(
        "browse",
        ["Notes"] * 5,
        params_for=lambda streams, page, index: {
            "note_id": streams.randint("note", 1, 12)
        },
    )


def test_request_to_failed_server_times_out():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    edge = system.servers["edge1"]
    edge.fail()

    def probe():
        request = WebRequest(page="Notes", params={"note_id": 1},
                             session_id="s", client_node="client-edge1-0")
        start = env.now
        try:
            yield from http_get(env, edge, request)
        except ServerUnavailable:
            return env.now - start
        raise AssertionError("expected ServerUnavailable")

    elapsed = run_process(env, probe())
    assert elapsed == pytest.approx(CONNECT_TIMEOUT_MS)


def test_client_fails_over_to_main_entry_point():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    system.servers["edge1"].fail()
    monitor = ResponseTimeMonitor()
    client = Client(
        system=system,
        monitor=monitor,
        streams=Streams(31),
        client_node="client-edge1-0",
        group="remote-browser",
        pattern=_browse_pattern(),
        think_time=4_000.0,
        end_time=30_000.0,
    )
    env.process(client.run(env))
    env.run()
    # Every request was served despite the dead edge.
    assert client.requests_sent == monitor.page_stats("remote-browser", "Notes").count
    assert client.requests_sent > 0
    assert client.failovers == client.requests_sent
    assert client.errors == 0
    # But at WAN latency plus the connect timeout on first attempts.
    assert monitor.mean("remote-browser", "Notes") > CONNECT_TIMEOUT_MS


def test_no_entry_point_left_counts_errors():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    for server in system.servers.values():
        server.fail()
    monitor = ResponseTimeMonitor()
    client = Client(
        system=system,
        monitor=monitor,
        streams=Streams(32),
        client_node="client-edge1-0",
        group="remote-browser",
        pattern=_browse_pattern(),
        think_time=4_000.0,
        end_time=20_000.0,
    )
    env.process(client.run(env))
    env.run()
    assert client.requests_sent == 0
    assert client.errors > 0


def test_recovery_restores_local_service():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    edge = system.servers["edge1"]
    latencies = []

    def scenario():
        def fetch(session):
            request = WebRequest(page="Notes", params={"note_id": 1},
                                 session_id=session, client_node="client-edge1-0")
            start = env.now
            yield from http_get(env, edge, request)
            latencies.append(env.now - start)

        yield from fetch("before")
        edge.fail()
        try:
            yield from fetch("down")
        except ServerUnavailable:
            latencies.append(None)
        edge.recover()
        yield from fetch("after")

    run_process(env, scenario())
    before, down, after = latencies
    assert down is None
    assert before < 50.0 and after < 50.0  # local again after recovery


def test_centralized_deployment_has_single_point_of_failure():
    """The counterpoint: without distribution, a main failure kills all."""
    env, system = tiny_system(PatternLevel.CENTRALIZED)
    system.main.fail()
    monitor = ResponseTimeMonitor()
    client = Client(
        system=system,
        monitor=monitor,
        streams=Streams(33),
        client_node="client-edge1-0",
        group="remote-browser",
        pattern=_browse_pattern(),
        think_time=4_000.0,
        end_time=20_000.0,
    )
    env.process(client.run(env))
    env.run()
    assert client.requests_sent == 0
    assert client.errors > 0
