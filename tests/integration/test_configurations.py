"""Integration tests asserting the paper's qualitative results.

These run scaled-down versions of the Tables 6/7 experiments (short
simulated durations, reduced load) and assert the *shapes* the paper
reports — who wins, in which direction each optimization moves each
page class — rather than absolute milliseconds.
"""

import pytest

from repro.core.patterns import PatternLevel
from repro.experiments.calibration import default_workload
from repro.experiments.runner import run_configuration, run_series

WORKLOAD = default_workload(duration_ms=90_000.0, warmup_ms=25_000.0)


@pytest.fixture(scope="module")
def petstore_series():
    return run_series("petstore", workload=WORKLOAD, seed=101)


@pytest.fixture(scope="module")
def rubis_series():
    return run_series("rubis", workload=WORKLOAD, seed=102)


# ---------------------------------------------------------------------------
# §4.1: centralized baseline
# ---------------------------------------------------------------------------


def test_centralized_remote_pays_two_wan_round_trips(petstore_series):
    result = petstore_series[PatternLevel.CENTRALIZED]
    for page in ("Main", "Category", "Item"):
        local = result.mean("local-browser", page)
        remote = result.mean("remote-browser", page)
        # "approximately an extra 400 ms ... two round trips"
        assert 350.0 < remote - local < 470.0, (page, local, remote)


def test_centralized_rubis_same_shape(rubis_series):
    result = rubis_series[PatternLevel.CENTRALIZED]
    gap = result.mean("remote-browser", "Item") - result.mean("local-browser", "Item")
    assert 350.0 < gap < 470.0


# ---------------------------------------------------------------------------
# §4.2: remote façade
# ---------------------------------------------------------------------------


def test_facade_makes_session_pages_local(petstore_series):
    result = petstore_series[PatternLevel.REMOTE_FACADE]
    for page in ("Main", "Signin", "Checkout", "Billing", "Signout"):
        assert result.mean("remote-buyer", page) < 100.0, page


def test_facade_shared_pages_cost_one_rmi(petstore_series):
    centralized = petstore_series[PatternLevel.CENTRALIZED]
    facade = petstore_series[PatternLevel.REMOTE_FACADE]
    for page in ("Category", "Product", "Item"):
        assert facade.mean("remote-browser", page) < centralized.mean(
            "remote-browser", page
        ), page
        assert facade.mean("remote-browser", page) > 150.0, page


def test_verify_signin_costs_two_rmi_calls(petstore_series):
    result = petstore_series[PatternLevel.REMOTE_FACADE]
    verify = result.mean("remote-buyer", "Verify Signin")
    cart = result.mean("remote-buyer", "Shopping Cart")
    # Verify Signin is the stated exception: two calls vs the cart's one.
    assert verify > cart * 1.5


# ---------------------------------------------------------------------------
# §4.3: stateful component caching
# ---------------------------------------------------------------------------


def test_replicas_make_entity_pages_local(petstore_series):
    facade = petstore_series[PatternLevel.REMOTE_FACADE]
    cached = petstore_series[PatternLevel.STATEFUL_CACHING]
    assert cached.mean("remote-browser", "Item") < 120.0
    assert facade.mean("remote-browser", "Item") > 200.0
    # The shopping cart page also becomes local (§4.3).
    assert cached.mean("remote-buyer", "Shopping Cart") < 120.0


def test_blocking_push_penalizes_writers(petstore_series):
    facade = petstore_series[PatternLevel.REMOTE_FACADE]
    cached = petstore_series[PatternLevel.STATEFUL_CACHING]
    for group in ("local-buyer", "remote-buyer"):
        assert cached.mean(group, "Commit Order") > facade.mean(
            group, "Commit Order"
        ) + 150.0, group


def test_rubis_store_pages_blocked_at_level3(rubis_series):
    facade = rubis_series[PatternLevel.REMOTE_FACADE]
    cached = rubis_series[PatternLevel.STATEFUL_CACHING]
    for page in ("Store Bid", "Store Comment"):
        assert cached.mean("local-bidder", page) > facade.mean(
            "local-bidder", page
        ) + 150.0, page


def test_aggregate_query_pages_still_remote_at_level3(petstore_series):
    cached = petstore_series[PatternLevel.STATEFUL_CACHING]
    assert cached.mean("remote-browser", "Category") > 200.0
    assert cached.mean("remote-browser", "Product") > 200.0


# ---------------------------------------------------------------------------
# §4.4: query caching
# ---------------------------------------------------------------------------


def test_query_caches_make_aggregate_pages_local(petstore_series):
    result = petstore_series[PatternLevel.QUERY_CACHING]
    assert result.mean("remote-browser", "Category") < 120.0
    assert result.mean("remote-browser", "Product") < 120.0


def test_keyword_search_stays_remote(petstore_series):
    result = petstore_series[PatternLevel.QUERY_CACHING]
    # "The Java Pet Store Search page performs a keyword query, which is
    # not cached, and hence it still incurs the cost of the remote call."
    assert result.mean("remote-browser", "Search") > 200.0


def test_rubis_remote_browser_indistinguishable_from_local(rubis_series):
    result = rubis_series[PatternLevel.QUERY_CACHING]
    remote = result.session_mean("remote-browser")
    local = result.session_mean("local-browser")
    # "the triumphal performance of RUBiS remote browser, now
    # indistinguishable from the local browser"
    assert remote < local + 25.0


# ---------------------------------------------------------------------------
# §4.5: asynchronous updates
# ---------------------------------------------------------------------------


def test_async_restores_writer_latency(petstore_series):
    cached = petstore_series[PatternLevel.STATEFUL_CACHING]
    asynchronous = petstore_series[PatternLevel.ASYNC_UPDATES]
    for group in ("local-buyer", "remote-buyer"):
        assert asynchronous.mean(group, "Commit Order") < cached.mean(
            group, "Commit Order"
        ) - 150.0, group


def test_async_keeps_reads_local(petstore_series):
    result = petstore_series[PatternLevel.ASYNC_UPDATES]
    assert result.mean("remote-browser", "Item") < 120.0
    assert result.mean("remote-browser", "Category") < 120.0


def test_rubis_async_summary_shape(rubis_series):
    """Figure 8's overall story: each group's best configuration."""
    means = {
        level: result.session_mean("remote-browser")
        for level, result in rubis_series.items()
    }
    # Remote browser improves monotonically (within noise) to local level.
    assert means[PatternLevel.ASYNC_UPDATES] < means[PatternLevel.REMOTE_FACADE]
    assert means[PatternLevel.REMOTE_FACADE] < means[PatternLevel.CENTRALIZED]
    bidder = {
        level: result.session_mean("remote-bidder")
        for level, result in rubis_series.items()
    }
    # Bidders: façade helps, blocking hurts, async recovers.
    assert bidder[PatternLevel.REMOTE_FACADE] < bidder[PatternLevel.CENTRALIZED]
    assert bidder[PatternLevel.STATEFUL_CACHING] > bidder[PatternLevel.QUERY_CACHING] - 100.0
    assert bidder[PatternLevel.ASYNC_UPDATES] < bidder[PatternLevel.STATEFUL_CACHING]


# ---------------------------------------------------------------------------
# Cross-cutting sanity
# ---------------------------------------------------------------------------


def test_load_is_served_at_configured_rate(petstore_series):
    for level, result in petstore_series.items():
        assert result.generator.achieved_rate_per_s() == pytest.approx(30.0, rel=0.1)


def test_servers_not_overstressed(petstore_series):
    """"CPU utilization ... never exceeded 40%" — we stay in that regime."""
    for level, result in petstore_series.items():
        for name, utilization in result.system.utilization_report().items():
            assert utilization < 0.55, (int(level), name, utilization)


def test_design_rules_hold_on_final_configuration():
    from repro.core.rules import DesignRuleChecker

    result = run_configuration(
        "rubis",
        PatternLevel.ASYNC_UPDATES,
        workload=default_workload(duration_ms=45_000.0, warmup_ms=10_000.0),
        seed=103,
        with_trace=True,
    )
    checker = DesignRuleChecker(result.system, min_replica_hit_rate=0.3)
    report = checker.check(result.trace)
    assert report.ok, report.summary()


def test_design_rules_hold_for_petstore_with_stated_exception():
    """Pet Store passes R1-R5 given the paper's own exception: "The only
    exception is the Verify Signin page, which makes two RMI calls"."""
    from repro.core.rules import DesignRuleChecker

    result = run_configuration(
        "petstore",
        PatternLevel.ASYNC_UPDATES,
        workload=default_workload(duration_ms=45_000.0, warmup_ms=10_000.0),
        seed=104,
        with_trace=True,
    )
    checker = DesignRuleChecker(
        result.system,
        page_exceptions={"Verify Signin": 2},
        min_replica_hit_rate=0.3,
    )
    report = checker.check(result.trace)
    assert report.ok, report.summary()
    # Without the exception, R2 must flag exactly that page.
    strict = DesignRuleChecker(result.system, min_replica_hit_rate=0.3).check(
        result.trace
    )
    flagged_pages = {v.subject for v in strict.violations_of("R2")}
    assert flagged_pages == {"Verify Signin"}
