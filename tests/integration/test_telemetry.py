"""Acceptance: windowed telemetry under a flash crowd with a WAN partition.

One RUBiS open-loop cell (flash-crowd arrivals, admission cap 140,
``edge-partition`` fault schedule) must produce a series artifact where
the paper-relevant transients are *visible and assertable*:

* the partition window rides on the artifact itself (fault overlay);
* admission drops concentrate in the flash windows while the cap binds;
* availability dips during the partition and recovers after it — with
  the recovery time a first-class number from the SLO monitor;
* the post-partition recovery churn shows as a p95 spike against the
  pre-flash baseline.

And the distribution contract: series / SLO / flamegraph artifacts are
byte-identical for ``--jobs 1`` and ``--jobs 4``, with the merge algebra
(counters add, gauges max, histogram counts add) holding across
serial-vs-parallel merges of the same cells.
"""

import json
import statistics

import pytest

from repro.core.patterns import PatternLevel
from repro.experiments.runner import run_configuration, run_series
from repro.faults.scenarios import load_schedule
from repro.obs.export import export_metrics, export_series, validate_series
from repro.obs.flame import collapse_spans, merge_folded, render_folded, validate_flamegraph
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import evaluate_slo, export_slo, load_slo, validate_slo
from repro.obs.timeseries import TimeSeriesRecorder
from repro.workload.openloop import OpenLoopConfig

DURATION = 36_000.0
WARMUP = 6_000.0

#: Flash crowd over [14.4 s, 21.6 s) at 8x the base rate, capped at 140
#: concurrent sessions so the surge hits admission control.
FLASH = OpenLoopConfig(
    scenario="flash-crowd",
    session_rate_per_s=6.0,
    duration_ms=DURATION,
    warmup_ms=WARMUP,
    think_time_ms=1_000.0,
    max_sessions=140,
)


def _partition():
    """edge1 partitioned from the router over [15 s, 24 s)."""
    return load_schedule("edge-partition", DURATION, WARMUP, edges=("edge1", "edge2"))


@pytest.fixture(scope="module")
def flash_cell():
    return run_configuration(
        "rubis",
        PatternLevel.REMOTE_FACADE,
        openloop=FLASH,
        faults=_partition(),
        with_metrics=True,
        obs_interval_ms=1000.0,
    )


def test_fault_window_rides_on_the_series(flash_cell):
    series = flash_cell.series
    assert series is not None
    assert series.fault_windows == (
        {
            "kind": "partition",
            "label": "router<->edge1",
            "start": 15_000.0,
            "end": 24_000.0,
        },
    )
    state = series.to_state()
    assert state["fault_windows"][0]["end"] == 24_000.0
    assert validate_series({"series": {"rubis/L2": state}}) == []


def test_sampler_streams_every_layer(flash_cell):
    series = flash_cell.series
    # Open-loop session lifecycle counters per window.
    for name in ("sessions.arrivals", "sessions.admitted", "requests.sent"):
        assert sum(v for _, v in series.counter_series(name)) > 0, name
    # Database and kernel activity differentiated into windows.
    assert sum(v for _, v in series.counter_series("db.statements")) > 0
    assert sum(v for _, v in series.counter_series("kernel.events")) > 0
    assert len(series.gauge_series("kernel.ready")) > 20
    assert len(series.gauge_series("sessions.active")) > 20
    # Windowed quantiles exist for the aggregate and for real pages.
    assert len(series.quantile_series("_all", 0.95)) > 20


def test_admission_drops_concentrate_in_the_flash(flash_cell):
    drops = dict(flash_cell.series.counter_series("sessions.dropped"))
    total = sum(drops.values())
    assert total > 50
    # Nothing is dropped before the surge arrives...
    assert min(drops) >= 14_000.0
    # ...the bulk lands while the flash (14.4–21.6 s) is arriving (a thin
    # tail drains afterwards while partition churn holds sessions open)...
    surge = sum(v for start, v in drops.items() if start < 22_000.0)
    assert surge > 0.8 * total
    # ...and the peak window is inside the flash.
    peak = max(drops, key=drops.get)
    assert 15_000.0 <= peak <= 22_000.0


def test_availability_dips_in_partition_and_recovery_is_measured(flash_cell):
    series = flash_cell.series
    report = evaluate_slo(series.to_state(), load_slo("policies/slo-default.json"))
    availability = report["objectives"]["availability"]
    assert availability["violated"] > 0
    bad = [row for row in availability["windows"] if not row["ok"]]
    # Every out-of-SLO window overlaps the partition, and the dip is deep:
    # edge1's whole population errors against the partitioned router.
    assert all(row["in_fault"] for row in bad)
    assert min(row["value"] for row in bad) < 0.85
    assert all(row["burn"] > 1.0 for row in bad)
    # Recovery to SLO is a number, not an eyeball: compliant again at the
    # first window boundary after the partition heals.
    recovery = availability["recovery"][0]
    assert recovery["fault"] == "partition:router<->edge1"
    assert recovery["recovery_ms"] is not None
    assert recovery["recovery_ms"] <= 2_000.0


def test_p95_spikes_on_post_partition_recovery(flash_cell):
    p95 = dict(flash_cell.series.quantile_series("_all", 0.95))
    baseline = statistics.median(
        p95[start] for start in p95 if 8_000.0 <= start <= 14_000.0
    )
    # First window after the partition heals: reconnect churn from the
    # backlog of edge1 sessions drives the tail up.
    spike_window = min(start for start in p95 if start >= 24_000.0)
    assert spike_window == 24_000.0
    assert p95[spike_window] > 1.5 * baseline


def test_telemetry_leaves_the_monitor_untouched(flash_cell):
    """The sampler adds kernel wakes but zero workload perturbation."""
    bare = run_configuration(
        "rubis",
        PatternLevel.REMOTE_FACADE,
        openloop=FLASH,
        faults=_partition(),
    )
    assert bare.monitor.to_state() == flash_cell.monitor.to_state()
    assert bare.trace_summary == flash_cell.trace_summary


# ---------------------------------------------------------------------------
# Serial vs parallel byte identity
# ---------------------------------------------------------------------------

LEVELS = [PatternLevel.REMOTE_FACADE, PatternLevel.ASYNC_UPDATES]
STEADY = OpenLoopConfig(
    scenario="steady",
    session_rate_per_s=4.0,
    duration_ms=20_000.0,
    warmup_ms=5_000.0,
    think_time_ms=1_000.0,
    max_sessions=120,
)


def _sweep(jobs):
    return run_series(
        "rubis",
        levels=LEVELS,
        openloop=STEADY,
        faults=load_schedule("edge-partition", 20_000.0, 5_000.0, edges=("edge1", "edge2")),
        seed=21,
        with_metrics=True,
        with_spans=True,
        jobs=jobs,
        obs_interval_ms=1000.0,
        obs_sample=0.25,
    )


@pytest.fixture(scope="module")
def serial_sweep():
    return _sweep(1)


@pytest.fixture(scope="module")
def parallel_sweep():
    return _sweep(4)


def _artifacts(results, directory):
    """Write series/SLO/flame artifacts exactly as the CLI exporter does."""
    labelled = [
        (f"rubis/L{int(level)}", results[level]) for level in LEVELS
    ]
    series_path = directory / "series.json"
    export_series(
        [(label, cell.series_state) for label, cell in labelled],
        str(series_path),
    )
    objectives = load_slo("policies/slo-default.json")
    slo_path = directory / "slo.json"
    export_slo(
        {
            label: evaluate_slo(cell.series_state, objectives)
            for label, cell in labelled
        },
        str(slo_path),
    )
    flame_path = directory / "flame.txt"
    folded = merge_folded(
        *(
            collapse_spans(cell.spans_state["spans"], root_prefix=label)
            for label, cell in labelled
        )
    )
    flame_path.write_text(render_folded(folded))
    return series_path, slo_path, flame_path


def test_artifacts_byte_identical_for_any_jobs(
    serial_sweep, parallel_sweep, tmp_path
):
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial_dir.mkdir()
    parallel_dir.mkdir()
    for one, two in zip(
        _artifacts(serial_sweep, serial_dir),
        _artifacts(parallel_sweep, parallel_dir),
    ):
        assert one.read_bytes() == two.read_bytes(), one.name
    assert validate_series(json.loads((serial_dir / "series.json").read_text())) == []
    assert validate_slo(json.loads((serial_dir / "slo.json").read_text())) == []
    assert validate_flamegraph((serial_dir / "flame.txt").read_text()) == []


def test_metrics_identical_when_telemetry_is_on_everywhere(
    serial_sweep, parallel_sweep, tmp_path
):
    """cpu gauges divide by end-of-run env.now, which the sampler's final
    wake extends — but identically in every process, so metrics stay
    byte-stable across --jobs as long as telemetry is on (or off) in both."""
    for suffix, results in (("s", serial_sweep), ("p", parallel_sweep)):
        export_metrics(
            [(f"rubis/L{int(lvl)}", results[lvl].metrics_state) for lvl in LEVELS],
            str(tmp_path / f"{suffix}.json"),
        )
    assert (tmp_path / "s.json").read_bytes() == (tmp_path / "p.json").read_bytes()


def test_merge_state_round_trip_serial_vs_parallel(serial_sweep, parallel_sweep):
    """Satellite: folding N cells into one recorder/registry commutes
    with where the cells ran."""

    def merged_series(results):
        recorder = TimeSeriesRecorder(interval_ms=1000.0)
        for level in LEVELS:
            recorder.merge_state(results[level].series_state)
        return json.dumps(recorder.to_state(), sort_keys=True)

    def merged_metrics(results):
        registry = MetricsRegistry()
        for level in LEVELS:
            registry.merge_state(results[level].metrics_state)
        return json.dumps(registry.to_state(), sort_keys=True)

    assert merged_series(serial_sweep) == merged_series(parallel_sweep)
    assert merged_metrics(serial_sweep) == merged_metrics(parallel_sweep)
    # Round trip: a merged recorder reconstructs from its own state.
    recorder = TimeSeriesRecorder(interval_ms=1000.0)
    for level in LEVELS:
        recorder.merge_state(serial_sweep[level].series_state)
    state = recorder.to_state()
    assert TimeSeriesRecorder.from_state(state).to_state() == state


def test_span_sampling_is_identical_across_processes(serial_sweep, parallel_sweep):
    for level in LEVELS:
        serial_spans = serial_sweep[level].spans_state
        parallel_spans = parallel_sweep[level].spans_state
        assert serial_spans == parallel_spans
        assert serial_spans["sample_rate"] == 0.25
        assert serial_spans["skipped_requests"] > serial_spans["sampled_requests"]


# ---------------------------------------------------------------------------
# CLI end to end
# ---------------------------------------------------------------------------


def test_cli_exports_and_validates_all_artifacts(tmp_path, capsys):
    from repro.experiments.__main__ import main
    from repro.obs.validate import validate_file

    series = tmp_path / "series.json"
    slo = tmp_path / "slo.json"
    flame = tmp_path / "flame.txt"
    html = tmp_path / "flame.html"
    trace = tmp_path / "trace.json"
    code = main(
        [
            "table7",
            "--workload", "open",
            "--scenario", "steady",
            "--session-rate", "3",
            "--think-time", "1",
            "--duration", "15",
            "--warmup", "4",
            "--jobs", "1",
            "--obs-sample", "0.5",
            "--trace-out", str(trace),
            "--series-out", str(series),
            "--slo", "policies/slo-default.json",
            "--slo-out", str(slo),
            "--flame-out", str(flame),
            "--flame-html", str(html),
        ]
    )
    assert code == 0
    for path in (trace, series, slo, flame):
        assert validate_file(str(path)) == [], path.name
    assert html.read_text().startswith("<!DOCTYPE html>")
    captured = capsys.readouterr()
    assert "SLO report" in captured.out
    assert "Latency attribution" in captured.out
    # The per-cell trace digest (stderr) reports the sampled fraction.
    assert "spans sampled" in captured.err


def test_cli_rejects_slo_out_without_slo(tmp_path):
    from repro.experiments.__main__ import main

    assert main(["table7", "--slo-out", str(tmp_path / "x.json")]) == 2
