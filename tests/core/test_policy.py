"""The declarative placement-policy layer.

Covers JSON round-tripping and validation of :class:`PlacementPolicy`,
selector resolution, the static design-rule precheck, and — the
load-bearing regression — that ``level_policy`` compiles plans identical
to the pre-policy pattern-level planner for all five levels of both
applications, on the paper's topology and on others.
"""

import pickle
from dataclasses import replace

import pytest

from repro.apps import petstore, rubis
from repro.core.automation import apply_policy, configure_for_level
from repro.core.patterns import PAPER_LEVELS, PatternLevel
from repro.core.planner import PlanError, plan_deployment
from repro.core.policy import (
    ComponentPolicy,
    PlacementPolicy,
    PolicyError,
    level_policy,
    load_policy,
    resolve_selectors,
)
from repro.core.rules import precheck
from repro.middleware.descriptors import ComponentKind, UpdateMode
from repro.middleware.updates import (
    UPDATE_SUBSCRIBER,
    UPDATER_FACADE,
    update_subscriber_descriptor,
    updater_facade_descriptor,
)
from tests.helpers import tiny_application


# ---------------------------------------------------------------------------
# Selector resolution
# ---------------------------------------------------------------------------


def test_resolve_selectors_canonical_order():
    edges = ["edge1", "edge2", "edge3"]
    assert resolve_selectors(("all",), "main", edges) == ["main"] + edges
    assert resolve_selectors(("edges",), "main", edges) == edges
    assert resolve_selectors(("main",), "main", edges) == ["main"]
    # Literal names resolve, and order is always main-first testbed order
    # regardless of how the policy wrote them.
    assert resolve_selectors(("edge2", "main"), "main", edges) == ["main", "edge2"]
    assert resolve_selectors(("edges", "main"), "main", edges) == ["main"] + edges


def test_resolve_selectors_unknown_name():
    with pytest.raises(PolicyError, match="edge9"):
        resolve_selectors(("edge9",), "main", ["edge1"])


# ---------------------------------------------------------------------------
# Serialization: JSON round-trip, pickling, malformed payloads
# ---------------------------------------------------------------------------


def _sample_policy() -> PlacementPolicy:
    return PlacementPolicy(
        name="sample",
        components={
            "Note": ComponentPolicy(deploy=("main",), replicas=("main", "edge1")),
            "NotesFacade": ComponentPolicy(deploy=("all",)),
            "servlet.Notes": ComponentPolicy(deploy=("all",)),
        },
        query_caches=("main", "edge1"),
        update_mode=UpdateMode.ASYNC,
        level=5,
    )


def test_policy_json_round_trip():
    policy = _sample_policy()
    restored = PlacementPolicy.from_json(policy.to_json())
    assert restored == policy
    # And through the string form too.
    import json

    assert PlacementPolicy.from_json(json.loads(policy.to_json_str())) == policy


def test_policy_pickle_round_trip():
    policy = _sample_policy()
    assert pickle.loads(pickle.dumps(policy)) == policy


def test_policy_json_defaults():
    policy = PlacementPolicy.from_json({"name": "bare"})
    assert policy.update_mode == UpdateMode.SYNC
    assert policy.level is None
    assert policy.effective_level() == PatternLevel.REMOTE_FACADE
    assert not policy.has_replicas and not policy.has_query_caches


@pytest.mark.parametrize(
    "payload, match",
    [
        ({"name": "x", "bogus": 1}, "unknown policy keys"),
        ({"name": "x", "update_mode": "sometimes"}, "update_mode"),
        ({"name": "x", "level": 9}, "level"),
        ({"name": "x", "components": {"A": {"deploy": ["main"], "nope": 1}}},
         "unknown component policy keys"),
        ({"name": "x", "components": {"A": []}}, "must be an object"),
        ({"name": "x", "components": []}, "components must be an object"),
    ],
)
def test_policy_json_rejects_malformed(payload, match):
    with pytest.raises(PolicyError, match=match):
        PlacementPolicy.from_json(payload)


def test_load_policy_checked_in_file():
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "policies" / "replicas-one-edge.json"
    policy = load_policy(str(path))
    assert policy.name == "replicas-one-edge"
    assert policy.effective_level() == PatternLevel.STATEFUL_CACHING
    assert policy.update_mode == UpdateMode.SYNC
    assert policy.components["Category"].replicas == ("main", "edge1")
    # It is consistent with the application it was written for.
    app = petstore.build_application(policy.effective_level())
    assert policy.validation_errors(app) == []


# ---------------------------------------------------------------------------
# Static validation against the application
# ---------------------------------------------------------------------------


def test_validation_unknown_component():
    app = tiny_application()
    policy = PlacementPolicy(
        name="bad", components={"Ghost": ComponentPolicy(deploy=("main",))}
    )
    errors = policy.validation_errors(app)
    assert any("unknown component 'Ghost'" in e for e in errors)


def test_validation_entity_must_stay_on_main():
    app = tiny_application()
    policy = PlacementPolicy(
        name="bad", components={"Note": ComponentPolicy(deploy=("all",))}
    )
    assert any("single-master" in e for e in policy.validation_errors(app))


def test_validation_replicas_need_read_mostly():
    app = tiny_application(read_mostly=False)
    policy = PlacementPolicy(
        name="bad",
        components={"Note": ComponentPolicy(deploy=("main",), replicas=("edges",))},
    )
    assert any("read-mostly" in e for e in policy.validation_errors(app))


def test_validation_replicas_only_on_entities():
    app = tiny_application()
    policy = PlacementPolicy(
        name="bad",
        components={"NotesFacade": ComponentPolicy(deploy=("all",), replicas=("edges",))},
    )
    assert any("not an entity bean" in e for e in policy.validation_errors(app))


def test_validation_servlet_must_cover_main():
    app = tiny_application()
    policy = PlacementPolicy(
        name="bad",
        components={"servlet.Notes": ComponentPolicy(deploy=("edges",))},
    )
    assert any("entry server" in e for e in policy.validation_errors(app))


def test_validation_query_caches_need_declarations():
    app = tiny_application()
    app.query_caches = {}
    policy = PlacementPolicy(name="bad", query_caches=("all",))
    assert any("declares none" in e for e in policy.validation_errors(app))


def test_planner_raises_on_invalid_policy():
    app = tiny_application()
    policy = PlacementPolicy(
        name="bad", components={"Ghost": ComponentPolicy(deploy=("main",))}
    )
    with pytest.raises(PlanError, match="Ghost"):
        plan_deployment(app, "main", ["edge1"], policy)


# ---------------------------------------------------------------------------
# Legacy-planner equivalence: the five canned policies reproduce the old
# pattern-level pipeline exactly, for every level, app and edge count.
# ---------------------------------------------------------------------------


def _legacy_configure(application, level):
    """Verbatim behavior of the pre-policy ``configure_for_level``."""
    mode = UpdateMode.ASYNC if level >= PatternLevel.ASYNC_UPDATES else UpdateMode.SYNC
    for name, descriptor in list(application.components.items()):
        if descriptor.read_mostly is None:
            continue
        if level < PatternLevel.STATEFUL_CACHING:
            descriptor.read_mostly = None
        else:
            descriptor.read_mostly = replace(descriptor.read_mostly, update_mode=mode)
    if level < PatternLevel.QUERY_CACHING:
        application.query_caches = {}
    else:
        application.query_caches = {
            query_id: replace(cache, update_mode=mode)
            for query_id, cache in application.query_caches.items()
        }
    if (
        level >= PatternLevel.STATEFUL_CACHING
        and UPDATER_FACADE not in application.components
    ):
        application.add(updater_facade_descriptor())
    if (
        level >= PatternLevel.ASYNC_UPDATES
        and UPDATE_SUBSCRIBER not in application.components
    ):
        application.add(update_subscriber_descriptor())
    application.validate()


def _legacy_plan(application, main, edges, level):
    """Verbatim placement rules of the pre-policy planner."""
    everywhere = [main] + list(edges)
    placements, replicas, caches = {}, {}, []
    for name, descriptor in application.components.items():
        if descriptor.kind in (ComponentKind.SERVLET, ComponentKind.STATEFUL_SESSION):
            placement = (
                [main] if level < PatternLevel.REMOTE_FACADE else list(everywhere)
            )
        elif descriptor.kind == ComponentKind.STATELESS_SESSION:
            placement = [main]
            threshold = descriptor.edge_from_level
            if threshold is not None and level >= threshold:
                placement = list(everywhere)
        elif descriptor.kind == ComponentKind.ENTITY:
            placement = [main]
            if descriptor.read_mostly is not None:
                replicas[name] = list(everywhere)
        else:  # MESSAGE_DRIVEN
            placement = (
                list(everywhere) if level >= PatternLevel.ASYNC_UPDATES else [main]
            )
        placements[name] = placement
    if level >= PatternLevel.QUERY_CACHING and application.query_caches:
        caches = list(everywhere)
    return placements, replicas, caches


EDGE_SETS = (
    ["edge1", "edge2"],  # the paper's testbed
    ["edge1"],
    ["edge1", "edge2", "edge3", "edge4"],
)


@pytest.mark.parametrize("build", [petstore.build_application, rubis.build_application])
@pytest.mark.parametrize("level", list(PAPER_LEVELS))
def test_level_policy_matches_legacy_planner(build, level):
    for edges in EDGE_SETS:
        legacy_app = build(level)
        _legacy_configure(legacy_app, level)
        placements, replicas, caches = _legacy_plan(legacy_app, "main", edges, level)

        new_app = build(level)
        policy = level_policy(level, new_app)
        apply_policy(new_app, policy)
        plan = plan_deployment(new_app, "main", edges, policy)

        assert plan.placements == placements, (level, edges)
        assert plan.replicas == replicas, (level, edges)
        assert plan.query_cache_servers == caches, (level, edges)


@pytest.mark.parametrize("level", list(PAPER_LEVELS))
def test_configure_for_level_still_compiles_policies(level):
    """The compatibility wrapper behaves like the old automation pass."""
    legacy_app = tiny_application()
    _legacy_configure(legacy_app, level)
    new_app = tiny_application()
    configure_for_level(new_app, level)
    assert set(new_app.components) == set(legacy_app.components)
    assert set(new_app.query_caches) == set(legacy_app.query_caches)
    for name, descriptor in new_app.components.items():
        legacy = legacy_app.components[name]
        assert (descriptor.read_mostly is None) == (legacy.read_mostly is None), name
        if descriptor.read_mostly is not None:
            assert descriptor.read_mostly.update_mode == legacy.read_mostly.update_mode


# ---------------------------------------------------------------------------
# Entry servers and the static precheck
# ---------------------------------------------------------------------------


def test_entry_servers_follow_web_tier():
    app = tiny_application()
    plan = plan_deployment(app, "main", ["edge1", "edge2"], PatternLevel.CENTRALIZED)
    assert plan.entry_servers == ["main"]
    app = tiny_application()
    plan = plan_deployment(app, "main", ["edge1", "edge2"], PatternLevel.REMOTE_FACADE)
    assert plan.entry_servers == ["main", "edge1", "edge2"]


def test_entry_servers_partial_web_tier():
    """Servlets on main+edge1 only: edge2 is not an entry server."""
    app = tiny_application()
    policy = PlacementPolicy(
        name="one-edge-web",
        components={
            "servlet.Notes": ComponentPolicy(deploy=("main", "edge1")),
            "NotesFacade": ComponentPolicy(deploy=("main", "edge1")),
        },
    )
    apply_policy(app, policy)
    plan = plan_deployment(app, "main", ["edge1", "edge2"], policy)
    assert plan.entry_servers == ["main", "edge1"]
    report = precheck(app, plan)
    assert report.ok
    assert report.checked_rules == ["R1", "R3"]


def _with_stateful_session(app):
    """Add a stateful session bean to the tiny application."""
    from repro.middleware.descriptors import ComponentDescriptor
    from repro.middleware.ejb import StatefulSessionBean

    class NoteSessionBean(StatefulSessionBean):
        pass

    app.add(
        ComponentDescriptor(
            name="NoteSession",
            kind=ComponentKind.STATEFUL_SESSION,
            impl=NoteSessionBean,
            remote_interface=False,
        )
    )
    app.validate()
    return app


def test_precheck_catches_session_state_gap():
    """Web tier at every edge but session state pinned to main: R3 fires
    before any simulation runs."""
    app = _with_stateful_session(tiny_application())
    policy = PlacementPolicy(
        name="session-on-main",
        components={
            "servlet.Notes": ComponentPolicy(deploy=("all",)),
            "NotesFacade": ComponentPolicy(deploy=("all",)),
            "NoteSession": ComponentPolicy(deploy=("main",)),
        },
    )
    apply_policy(app, policy)
    plan = plan_deployment(app, "main", ["edge1", "edge2"], policy)
    report = precheck(app, plan)
    assert not report.ok
    assert [violation.rule for violation in report.violations] == ["R3"]
    assert "NoteSession" in str(report.violations[0])


def test_precheck_centralized_skips_r3():
    app = tiny_application()
    plan = plan_deployment(app, "main", ["edge1"], PatternLevel.CENTRALIZED)
    report = precheck(app, plan)
    assert report.checked_rules == ["R1"]
