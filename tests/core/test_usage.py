"""Unit tests for service usage patterns (§3.2)."""

import pytest

from repro.core.usage import PatternError, ScriptedPattern, WeightedPattern
from repro.simnet.rng import Streams


def _weighted(**overrides):
    defaults = dict(
        name="browser",
        length=20,
        weights={"Main": 1.0, "List": 3.0, "Detail": 6.0},
        first_page="Main",
    )
    defaults.update(overrides)
    return WeightedPattern(**defaults)


def test_session_has_requested_length():
    pattern = _weighted()
    visits = pattern.session(Streams(1), 0)
    assert len(visits) == 20


def test_session_starts_at_first_page():
    pattern = _weighted()
    visits = pattern.session(Streams(1), 0)
    assert visits[0].page == "Main"


def test_weights_respected_in_aggregate():
    pattern = _weighted(length=400)
    streams = Streams(7)
    counts = {"Main": 0, "List": 0, "Detail": 0}
    for session_index in range(25):
        for visit in pattern.session(streams, session_index):
            counts[visit.page] += 1
    total = sum(counts.values())
    assert counts["Detail"] / total == pytest.approx(0.6, abs=0.06)
    assert counts["List"] / total == pytest.approx(0.3, abs=0.06)


def test_follows_inserts_prerequisite():
    pattern = _weighted(
        length=200, follows={"Detail": "List"}
    )
    visits = pattern.session(Streams(3), 0)
    for index, visit in enumerate(visits):
        if visit.page == "Detail":
            assert index > 0 and visits[index - 1].page == "List"


def test_params_for_sees_previous_visit():
    seen = []

    def params_for(streams, page, previous):
        seen.append((page, previous.page if previous else None))
        return {"p": page}

    pattern = _weighted(length=5, params_for=params_for)
    visits = pattern.session(Streams(2), 0)
    assert all(visit.params == {"p": visit.page} for visit in visits)
    assert seen[0] == ("Main", None)


def test_sessions_are_deterministic_per_seed():
    a = _weighted().session(Streams(42), 0)
    b = _weighted().session(Streams(42), 0)
    assert [v.page for v in a] == [v.page for v in b]


def test_weighted_rejects_bad_inputs():
    with pytest.raises(PatternError):
        _weighted(length=0)
    with pytest.raises(PatternError):
        _weighted(weights={})
    with pytest.raises(PatternError):
        _weighted(weights={"Main": -1.0})


def test_scripted_pattern_replays_script():
    pattern = ScriptedPattern("buyer", ["A", "B", "C"])
    visits = pattern.session(Streams(1), 0)
    assert [v.page for v in visits] == ["A", "B", "C"]
    assert pattern.length == 3


def test_scripted_pattern_params_by_index():
    pattern = ScriptedPattern(
        "buyer", ["A", "B"], params_for=lambda s, page, i: {"i": i}
    )
    visits = pattern.session(Streams(1), 0)
    assert [v.params["i"] for v in visits] == [0, 1]


def test_scripted_rejects_empty_script():
    with pytest.raises(PatternError):
        ScriptedPattern("x", [])
