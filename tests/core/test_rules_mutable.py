"""Unit tests for the design-rule checker and mutable-services manager."""

import pytest

from repro.core.mutable import MutableServiceManager
from repro.core.patterns import PatternLevel
from repro.core.rules import DesignRuleChecker
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.web import WebRequest, http_get
from repro.simnet.monitor import CallRecord, Trace
from tests.helpers import run_process, tiny_system


def _drive_edge_traffic(env, system, note_ids=(1, 2), repeats=2):
    def proc():
        server = system.entry_server_for("client-edge1-0")
        for repeat in range(repeats):
            for note_id in note_ids:
                request = WebRequest(
                    page="Notes",
                    params={"note_id": note_id},
                    session_id=f"rule-{repeat}",
                    client_node="client-edge1-0",
                )
                yield from http_get(env, server, request, client_group="remote")

    env.process(proc())
    env.run()


# ---------------------------------------------------------------------------
# Design rules
# ---------------------------------------------------------------------------


def test_proper_deployment_passes_all_rules():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING, with_trace=True)
    system.warm_replicas()
    _drive_edge_traffic(env, system)
    report = DesignRuleChecker(system).check()
    assert report.ok, report.summary()
    assert set(report.checked_rules) == {"R1", "R2", "R3", "R4"}


def test_r1_flags_remote_entity_interfaces():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.application.components["Note"].remote_interface = True
    report = DesignRuleChecker(system).check()
    assert any(v.rule == "R1" for v in report.violations)


def test_r2_flags_chatty_pages():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE, with_trace=True)
    trace = system.trace
    for _ in range(3):
        trace.record(
            CallRecord(
                time=1.0, kind="rmi", src_node="edge1", dst_node="main",
                target="NotesFacade", method="m", wide_area=True,
                page="Chatty", request_id=77,
            )
        )
    report = DesignRuleChecker(system).check()
    chatty = [v for v in report.violations if v.rule == "R2"]
    assert len(chatty) == 1
    assert "Chatty" in chatty[0].subject


def test_r2_respects_page_exceptions():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE, with_trace=True)
    trace = system.trace
    for _ in range(2):
        trace.record(
            CallRecord(
                time=1.0, kind="rmi", src_node="edge1", dst_node="main",
                target="NotesFacade", method="m", wide_area=True,
                page="Verify Signin", request_id=88,
            )
        )
    report = DesignRuleChecker(
        system, page_exceptions={"Verify Signin": 2}
    ).check()
    assert report.ok


def test_r5_flags_blocking_pushes_at_level5():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.main.update_propagator.sync_pushes = 3  # simulate misconfiguration
    report = DesignRuleChecker(system).check()
    assert any(v.rule == "R5" for v in report.violations)


def test_r5_passes_on_clean_async_deployment():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES, with_trace=True)
    system.warm_replicas()
    _drive_edge_traffic(env, system)
    report = DesignRuleChecker(system).check()
    assert not report.violations_of("R5")


def test_report_summary_format():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING, with_trace=True)
    system.warm_replicas()
    _drive_edge_traffic(env, system)
    summary = DesignRuleChecker(system).check().summary()
    assert "PASS" in summary


# ---------------------------------------------------------------------------
# Mutable services (dynamic redeployment)
# ---------------------------------------------------------------------------


def test_manager_deploys_replica_on_demand():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING, with_trace=True)
    edge2 = system.servers["edge2"]
    # Simulate a deployment hole: edge2 lost its replica.
    edge2._readonly.pop("Note")
    manager = MutableServiceManager(system, check_interval_ms=1_000.0, miss_threshold=3)
    for _ in range(5):
        manager.note_wan_read("edge2", "Note")
    env.process(manager.run(env))
    env.run(until=2_500.0)
    manager.stop()
    assert edge2.readonly_container("Note") is not None
    assert len(manager.actions) == 1
    action = manager.actions[0]
    assert (action.component, action.server, action.kind) == ("Note", "edge2", "replica")


def test_manager_respects_threshold():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    edge2 = system.servers["edge2"]
    edge2._readonly.pop("Note")
    manager = MutableServiceManager(system, check_interval_ms=1_000.0, miss_threshold=10)
    manager.note_wan_read("edge2", "Note")
    env.process(manager.run(env))
    env.run(until=2_500.0)
    manager.stop()
    assert edge2.readonly_container("Note") is None
    assert manager.actions == []


def test_manager_extends_update_propagation():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    edge2 = system.servers["edge2"]
    edge2._readonly.pop("Note")
    propagator = system.main.update_propagator
    propagator.targets.remove(edge2)
    manager = MutableServiceManager(system, check_interval_ms=500.0, miss_threshold=1)
    manager.note_wan_read("edge2", "Note")
    env.process(manager.run(env))
    env.run(until=1_200.0)
    manager.stop()
    assert edge2 in propagator.targets


def test_manager_derives_demand_from_trace():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE, with_trace=True)
    # At level 2 the façade is main-only: edge servlet traffic creates
    # wide-area RMI records the manager can read as demand.
    _drive_edge_traffic(env, system, note_ids=(1, 2, 3), repeats=2)
    manager = MutableServiceManager(system, check_interval_ms=1_000.0, miss_threshold=3)
    env.process(manager.run(env))
    env.run(until=env.now + 1_500.0)  # the traffic already advanced the clock
    manager.stop()
    facade_actions = [a for a in manager.actions if a.kind == "facade"]
    assert facade_actions, "expected on-demand facade deployment"
    assert system.servers["edge1"].containers.get("NotesFacade") is not None
