"""Unit tests for extended-descriptor automation and deployment planning."""

import pytest

from repro.core.automation import configure_for_level
from repro.core.patterns import PAPER_LEVELS, PATTERN_CATALOG, PatternLevel, level_name
from repro.core.planner import PlanError, plan_deployment
from repro.middleware.descriptors import UpdateMode
from repro.middleware.updates import UPDATE_SUBSCRIBER, UPDATER_FACADE
from tests.helpers import tiny_application


# ---------------------------------------------------------------------------
# Pattern catalog
# ---------------------------------------------------------------------------


def test_catalog_covers_all_levels():
    assert set(PATTERN_CATALOG) == set(PatternLevel)
    for level, info in PATTERN_CATALOG.items():
        assert info.level == level
        if level in PAPER_LEVELS:
            assert info.paper_section.startswith("4.")
        else:
            assert info.paper_section.startswith("beyond the paper")


def test_level_name():
    assert level_name(PatternLevel.CENTRALIZED) == "Centralized"
    assert level_name(3) == "Stateful component caching"


def test_levels_are_ordered():
    assert PatternLevel.CENTRALIZED < PatternLevel.REMOTE_FACADE < PatternLevel.ASYNC_UPDATES


# ---------------------------------------------------------------------------
# Automation (§5)
# ---------------------------------------------------------------------------


def test_level1_strips_read_mostly_and_caches():
    app = tiny_application()
    report = configure_for_level(app, PatternLevel.CENTRALIZED)
    assert app.components["Note"].read_mostly is None
    assert app.query_caches == {}
    assert "tiny.notes_of" in app.queries  # definitions survive
    assert report.read_mostly_stripped == ["Note"]
    assert UPDATER_FACADE not in app.components


def test_level3_activates_replicas_sync():
    app = tiny_application()
    report = configure_for_level(app, PatternLevel.STATEFUL_CACHING)
    assert app.components["Note"].read_mostly.update_mode == UpdateMode.SYNC
    assert app.query_caches == {}  # caches only from level 4
    assert UPDATER_FACADE in app.components
    assert report.mode == UpdateMode.SYNC


def test_level4_activates_query_caches():
    app = tiny_application()
    configure_for_level(app, PatternLevel.QUERY_CACHING)
    assert "tiny.notes_of" in app.query_caches
    assert app.query_caches["tiny.notes_of"].update_mode == UpdateMode.SYNC


def test_level5_switches_everything_async():
    app = tiny_application()
    report = configure_for_level(app, PatternLevel.ASYNC_UPDATES)
    assert app.components["Note"].read_mostly.update_mode == UpdateMode.ASYNC
    assert app.query_caches["tiny.notes_of"].update_mode == UpdateMode.ASYNC
    assert UPDATE_SUBSCRIBER in app.components
    assert report.mode == UpdateMode.ASYNC


def test_automation_is_idempotent_about_auxiliaries():
    app = tiny_application()
    configure_for_level(app, PatternLevel.ASYNC_UPDATES)
    configure_for_level(app, PatternLevel.ASYNC_UPDATES)
    assert list(app.components).count(UPDATER_FACADE) == 1


def test_automation_report_summary_text():
    app = tiny_application()
    report = configure_for_level(app, PatternLevel.ASYNC_UPDATES)
    summary = report.summary()
    assert "asynchronous" in summary
    assert "UpdaterFacade" in summary


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


def _plan(level):
    app = tiny_application()
    configure_for_level(app, level)
    return app, plan_deployment(app, "main", ["edge1", "edge2"], level)


def test_level1_everything_on_main():
    app, plan = _plan(PatternLevel.CENTRALIZED)
    for name in app.components:
        assert plan.servers_of(name) == ["main"], name
    assert plan.replicas == {}
    assert plan.query_cache_servers == []


def test_level2_web_and_stateful_everywhere():
    app, plan = _plan(PatternLevel.REMOTE_FACADE)
    assert plan.servers_of("servlet.Notes") == ["main", "edge1", "edge2"]
    assert plan.servers_of("NotesFacade") == ["main"]  # edge_from_level=3
    assert plan.servers_of("Note") == ["main"]


def test_level3_facades_and_replicas_at_edges():
    app, plan = _plan(PatternLevel.STATEFUL_CACHING)
    assert plan.servers_of("NotesFacade") == ["main", "edge1", "edge2"]
    assert plan.replica_servers_of("Note") == ["main", "edge1", "edge2"]
    assert plan.query_cache_servers == []


def test_level4_query_caches_everywhere():
    app, plan = _plan(PatternLevel.QUERY_CACHING)
    assert plan.query_cache_servers == ["main", "edge1", "edge2"]


def test_level5_subscribers_everywhere():
    app, plan = _plan(PatternLevel.ASYNC_UPDATES)
    from repro.middleware.updates import UPDATE_SUBSCRIBER

    assert plan.servers_of(UPDATE_SUBSCRIBER) == ["main", "edge1", "edge2"]


def test_plan_describe_mentions_servers():
    app, plan = _plan(PatternLevel.STATEFUL_CACHING)
    text = plan.describe()
    assert "main" in text and "edge1" in text and "replicas" in text


def test_components_on_listing():
    app, plan = _plan(PatternLevel.CENTRALIZED)
    assert "NotesFacade" in plan.components_on("main")
    assert plan.components_on("edge1") == []
