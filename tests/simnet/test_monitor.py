"""Unit tests for tracing and response-time aggregation."""

import pytest

from repro.simnet.monitor import CallRecord, PageStats, ResponseTimeMonitor, Trace


def _record(**overrides):
    defaults = dict(
        time=1.0,
        kind="rmi",
        src_node="edge1",
        dst_node="main",
        target="Catalog",
        method="get_item",
        wide_area=True,
        page="Item",
        request_id=1,
    )
    defaults.update(overrides)
    return CallRecord(**defaults)


def test_trace_records_and_queries():
    trace = Trace()
    trace.record(_record())
    trace.record(_record(kind="jdbc", wide_area=False, request_id=2))
    assert len(trace.by_kind("rmi")) == 1
    assert len(trace.wide_area_calls()) == 1
    assert trace.remote_targets() == {"Catalog"}


def test_trace_disabled_records_nothing():
    trace = Trace(enabled=False)
    trace.record(_record())
    assert trace.records == []


def test_trace_max_records_drops_overflow():
    trace = Trace(max_records=1)
    trace.record(_record())
    trace.record(_record())
    assert len(trace.records) == 1
    assert trace.dropped == 1


def test_calls_per_request_counts_wide_area_only():
    trace = Trace()
    trace.record(_record(request_id=5))
    trace.record(_record(request_id=5))
    trace.record(_record(request_id=5, wide_area=False))
    assert trace.calls_per_request("rmi") == {5: 2}
    assert trace.calls_per_request("rmi", wide_area_only=False) == {5: 3}


def test_page_stats_mean_min_max():
    stats = PageStats()
    for value in (10.0, 20.0, 30.0):
        stats.add(value)
    assert stats.mean == pytest.approx(20.0)
    assert stats.minimum == 10.0
    assert stats.maximum == 30.0
    assert stats.count == 3


def test_page_stats_stddev():
    stats = PageStats()
    for value in (10.0, 20.0):
        stats.add(value)
    assert stats.stddev == pytest.approx(5.0)


def test_page_stats_percentile_requires_samples():
    stats = PageStats()
    stats.add(5.0, keep_sample=True)
    stats.add(15.0, keep_sample=True)
    stats.add(25.0, keep_sample=True)
    assert stats.percentile(0.0) == 5.0
    assert stats.percentile(1.0) == 25.0
    assert stats.percentile(0.5) == 15.0


def test_monitor_groups_and_pages():
    monitor = ResponseTimeMonitor()
    monitor.observe(10.0, "local-browser", "Item", 50.0)
    monitor.observe(11.0, "remote-browser", "Item", 450.0)
    assert monitor.groups() == ["local-browser", "remote-browser"]
    assert monitor.pages("local-browser") == ["Item"]
    assert monitor.mean("remote-browser", "Item") == 450.0


def test_monitor_warmup_discards_early_samples():
    monitor = ResponseTimeMonitor(warmup=100.0)
    monitor.observe(50.0, "g", "P", 999.0)
    monitor.observe(150.0, "g", "P", 10.0)
    assert monitor.mean("g", "P") == 10.0
    assert monitor.discarded_warmup == 1


def test_monitor_session_mean_spans_pages():
    monitor = ResponseTimeMonitor()
    monitor.observe(1.0, "g", "A", 10.0)
    monitor.observe(2.0, "g", "B", 30.0)
    assert monitor.session_mean("g") == pytest.approx(20.0)


def test_monitor_table_structure():
    monitor = ResponseTimeMonitor()
    monitor.observe(1.0, "g", "A", 10.0)
    table = monitor.table()
    assert table == {"g": {"A": 10.0}}


def test_monitor_merge_combines_counts():
    a = ResponseTimeMonitor()
    b = ResponseTimeMonitor()
    a.observe(1.0, "g", "P", 10.0)
    b.observe(1.0, "g", "P", 30.0)
    merged = a.merged(b)
    assert merged.mean("g", "P") == pytest.approx(20.0)
    assert merged.page_stats("g", "P").count == 2
