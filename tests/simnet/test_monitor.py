"""Unit tests for tracing and response-time aggregation."""

import pytest

from repro.simnet.monitor import CallRecord, PageStats, ResponseTimeMonitor, Trace


def _record(**overrides):
    defaults = dict(
        time=1.0,
        kind="rmi",
        src_node="edge1",
        dst_node="main",
        target="Catalog",
        method="get_item",
        wide_area=True,
        page="Item",
        request_id=1,
    )
    defaults.update(overrides)
    return CallRecord(**defaults)


def test_trace_records_and_queries():
    trace = Trace()
    trace.record(_record())
    trace.record(_record(kind="jdbc", wide_area=False, request_id=2))
    assert len(trace.by_kind("rmi")) == 1
    assert len(trace.wide_area_calls()) == 1
    assert trace.remote_targets() == {"Catalog"}


def test_trace_disabled_records_nothing():
    trace = Trace(enabled=False)
    trace.record(_record())
    assert trace.records == []


def test_trace_max_records_drops_overflow():
    trace = Trace(max_records=1)
    trace.record(_record())
    trace.record(_record())
    assert len(trace.records) == 1
    assert trace.dropped == 1


def test_calls_per_request_counts_wide_area_only():
    trace = Trace()
    trace.record(_record(request_id=5))
    trace.record(_record(request_id=5))
    trace.record(_record(request_id=5, wide_area=False))
    assert trace.calls_per_request("rmi") == {5: 2}
    assert trace.calls_per_request("rmi", wide_area_only=False) == {5: 3}


def test_page_stats_mean_min_max():
    stats = PageStats()
    for value in (10.0, 20.0, 30.0):
        stats.add(value)
    assert stats.mean == pytest.approx(20.0)
    assert stats.minimum == 10.0
    assert stats.maximum == 30.0
    assert stats.count == 3


def test_page_stats_stddev():
    stats = PageStats()
    for value in (10.0, 20.0):
        stats.add(value)
    assert stats.stddev == pytest.approx(5.0)


def test_page_stats_percentile_requires_samples():
    stats = PageStats()
    stats.add(5.0, keep_sample=True)
    stats.add(15.0, keep_sample=True)
    stats.add(25.0, keep_sample=True)
    assert stats.percentile(0.0) == 5.0
    assert stats.percentile(1.0) == 25.0
    assert stats.percentile(0.5) == 15.0


def test_monitor_groups_and_pages():
    monitor = ResponseTimeMonitor()
    monitor.observe(10.0, "local-browser", "Item", 50.0)
    monitor.observe(11.0, "remote-browser", "Item", 450.0)
    assert monitor.groups() == ["local-browser", "remote-browser"]
    assert monitor.pages("local-browser") == ["Item"]
    assert monitor.mean("remote-browser", "Item") == 450.0


def test_monitor_warmup_discards_early_samples():
    monitor = ResponseTimeMonitor(warmup=100.0)
    monitor.observe(50.0, "g", "P", 999.0)
    monitor.observe(150.0, "g", "P", 10.0)
    assert monitor.mean("g", "P") == 10.0
    assert monitor.discarded_warmup == 1


def test_monitor_session_mean_spans_pages():
    monitor = ResponseTimeMonitor()
    monitor.observe(1.0, "g", "A", 10.0)
    monitor.observe(2.0, "g", "B", 30.0)
    assert monitor.session_mean("g") == pytest.approx(20.0)


def test_monitor_table_structure():
    monitor = ResponseTimeMonitor()
    monitor.observe(1.0, "g", "A", 10.0)
    table = monitor.table()
    assert table == {"g": {"A": 10.0}}


def test_monitor_merge_combines_counts():
    a = ResponseTimeMonitor()
    b = ResponseTimeMonitor()
    a.observe(1.0, "g", "P", 10.0)
    b.observe(1.0, "g", "P", 30.0)
    merged = a.merged(b)
    assert merged.mean("g", "P") == pytest.approx(20.0)
    assert merged.page_stats("g", "P").count == 2


# ---------------------------------------------------------------------------
# Percentile interpolation and empty-cell minimum (regression)
# ---------------------------------------------------------------------------


def test_page_stats_percentile_interpolates():
    stats = PageStats()
    for value in (10.0, 20.0):
        stats.add(value, keep_sample=True)
    # Regression: the old implementation truncated the index, returning
    # 10.0 for the median of [10, 20].
    assert stats.percentile(0.5) == pytest.approx(15.0)
    stats.add(30.0, keep_sample=True)
    stats.add(40.0, keep_sample=True)
    assert stats.percentile(0.25) == pytest.approx(17.5)
    assert stats.percentile(0.75) == pytest.approx(32.5)
    # Out-of-range quantiles clamp instead of indexing out of bounds.
    assert stats.percentile(-0.5) == 10.0
    assert stats.percentile(1.5) == 40.0


def test_empty_page_stats_reports_zero_minimum():
    stats = PageStats()
    # Regression: an empty cell used to leak minimum == inf into reports.
    assert stats.minimum == 0.0
    assert stats.mean == 0.0
    stats.add(5.0)
    assert stats.minimum == 5.0


def test_page_stats_merge_with_empty_keeps_minimum_finite():
    stats = PageStats()
    stats.add(7.0)
    stats.merge(PageStats())
    assert stats.minimum == 7.0
    empty = PageStats()
    empty.merge(PageStats())
    assert empty.minimum == 0.0


# ---------------------------------------------------------------------------
# Monitor merging (regression: samples and warm-up counters survive)
# ---------------------------------------------------------------------------


def test_merged_monitor_preserves_samples_and_percentiles():
    a = ResponseTimeMonitor(keep_samples=True)
    b = ResponseTimeMonitor(keep_samples=True)
    a_values = [10.0, 30.0, 50.0]
    b_values = [20.0, 40.0]
    for value in a_values:
        a.observe(1.0, "g", "P", value)
    for value in b_values:
        b.observe(1.0, "g", "P", value)
    merged = a.merged(b)
    # Regression: merged() used to drop every sample, so percentile()
    # silently returned 0.0.
    reference = PageStats()
    for value in a_values + b_values:
        reference.add(value, keep_sample=True)
    median = merged.page_stats("g", "P").percentile(0.5)
    assert median == reference.percentile(0.5)
    assert median == pytest.approx(30.0)
    assert merged.keep_samples is True
    assert sorted(merged.page_stats("g", "P").samples) == sorted(a_values + b_values)
    assert sorted(merged._session_stats["g"].samples) == sorted(a_values + b_values)


def test_merged_monitor_mixed_sample_keeping():
    a = ResponseTimeMonitor(keep_samples=True)
    b = ResponseTimeMonitor(keep_samples=False)
    a.observe(1.0, "g", "P", 10.0)
    b.observe(1.0, "g", "P", 30.0)
    merged = a.merged(b)
    # Samples merge when either source kept them.
    assert merged.keep_samples is True
    assert merged.page_stats("g", "P").samples == [10.0]
    assert merged.page_stats("g", "P").count == 2


def test_merged_monitor_carries_warmup_discards():
    a = ResponseTimeMonitor(warmup=100.0)
    b = ResponseTimeMonitor(warmup=50.0)
    a.observe(10.0, "g", "P", 1.0)   # discarded
    a.observe(150.0, "g", "P", 2.0)
    b.observe(10.0, "g", "P", 3.0)   # discarded
    b.observe(20.0, "g", "P", 4.0)   # discarded
    merged = a.merged(b)
    # Regression: merged() used to reset discarded_warmup to 0.
    assert merged.discarded_warmup == 3
    assert merged.warmup == 100.0
    assert merged.page_stats("g", "P").count == 1


def test_merged_monitor_minimum_and_maximum():
    a = ResponseTimeMonitor()
    b = ResponseTimeMonitor()
    a.observe(1.0, "g", "P", 25.0)
    b.observe(1.0, "g", "P", 5.0)
    merged = a.merged(b)
    stats = merged.page_stats("g", "P")
    assert stats.minimum == 5.0
    assert stats.maximum == 25.0
    # A cell present in neither source stays empty with a 0.0 minimum.
    assert merged.page_stats("g", "missing").minimum == 0.0


# ---------------------------------------------------------------------------
# Serialization (the parallel runner's transport format)
# ---------------------------------------------------------------------------


def test_monitor_state_roundtrip_is_lossless():
    monitor = ResponseTimeMonitor(keep_samples=True, warmup=10.0)
    monitor.observe(5.0, "g", "P", 1.0)  # discarded by warm-up
    monitor.observe(20.0, "local-browser", "Item", 50.0)
    monitor.observe(21.0, "local-browser", "Item", 70.0)
    monitor.observe(22.0, "remote-browser", "Item", 450.0)
    rebuilt = ResponseTimeMonitor.from_state(monitor.to_state())
    assert rebuilt.table() == monitor.table()
    assert rebuilt.groups() == monitor.groups()
    assert rebuilt.discarded_warmup == monitor.discarded_warmup
    assert rebuilt.keep_samples is True
    assert rebuilt.warmup == 10.0
    for group in monitor.groups():
        assert rebuilt.session_mean(group) == monitor.session_mean(group)
        for page in monitor.pages(group):
            original = monitor.page_stats(group, page)
            copy = rebuilt.page_stats(group, page)
            assert copy.count == original.count
            assert copy.total == original.total
            assert copy.total_sq == original.total_sq
            assert copy.minimum == original.minimum
            assert copy.maximum == original.maximum
            assert copy.samples == original.samples
            assert copy.percentile(0.5) == original.percentile(0.5)


def test_monitor_state_is_json_safe():
    import json

    monitor = ResponseTimeMonitor()
    rebuilt = ResponseTimeMonitor.from_state(
        json.loads(json.dumps(monitor.to_state()))
    )
    # Empty monitors (inf min cells) must survive a JSON round trip.
    monitor.observe(1.0, "g", "P", 10.0)
    state = json.loads(json.dumps(monitor.to_state()))
    assert ResponseTimeMonitor.from_state(state).mean("g", "P") == 10.0
    assert rebuilt.groups() == []


def test_trace_summary_digest():
    trace = Trace(max_records=2)
    trace.record(_record())
    trace.record(_record(kind="jdbc", wide_area=False))
    trace.record(_record())  # dropped by max_records
    summary = trace.summary()
    assert summary.records == 2
    assert summary.dropped == 1
    assert summary.by_kind == {"jdbc": 1, "rmi": 1}
    assert summary.wide_area_by_kind == {"rmi": 1}
    assert summary.wide_area_calls() == 1
    assert summary.wide_area_calls("rmi") == 1
    assert summary.wide_area_calls("jdbc") == 0
    assert summary.remote_targets == ("Catalog",)
    import pickle

    assert pickle.loads(pickle.dumps(summary)) == summary
