"""Unit tests for resources, semaphores, stores, and latches."""

import pytest

from repro.simnet.kernel import SimulationError
from repro.simnet.primitives import Latch, Resource, Semaphore, Store


# ---------------------------------------------------------------------------
# Semaphore
# ---------------------------------------------------------------------------


def test_semaphore_grants_up_to_permits(env):
    semaphore = Semaphore(env, permits=2)
    first = semaphore.acquire()
    second = semaphore.acquire()
    third = semaphore.acquire()
    env.run()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert semaphore.queue_length == 1


def test_semaphore_release_wakes_fifo(env):
    semaphore = Semaphore(env, permits=1)
    semaphore.acquire()
    waiter_a = semaphore.acquire()
    waiter_b = semaphore.acquire()
    semaphore.release()
    env.run()
    assert waiter_a.triggered
    assert not waiter_b.triggered


def test_semaphore_negative_permits_rejected(env):
    with pytest.raises(ValueError):
        Semaphore(env, permits=-1)


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_serializes_beyond_capacity(env):
    resource = Resource(env, capacity=1)
    log = []

    def worker(env, name):
        yield from resource.use(10.0)
        log.append((env.now, name))

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    assert log == [(10.0, "a"), (20.0, "b")]


def test_resource_parallel_within_capacity(env):
    resource = Resource(env, capacity=2)
    log = []

    def worker(env, name):
        yield from resource.use(10.0)
        log.append((env.now, name))

    env.process(worker(env, "a"))
    env.process(worker(env, "b"))
    env.run()
    assert log == [(10.0, "a"), (10.0, "b")]


def test_resource_utilization_accounting(env):
    resource = Resource(env, capacity=2)

    def worker(env):
        yield from resource.use(50.0)

    env.process(worker(env))
    env.run(until=100.0)
    # One unit busy for 50 of 100 ms over capacity 2 => 25%.
    assert resource.utilization() == pytest.approx(0.25)


def test_resource_mean_wait(env):
    resource = Resource(env, capacity=1)

    def worker(env):
        yield from resource.use(10.0)

    env.process(worker(env))
    env.process(worker(env))
    env.process(worker(env))
    env.run()
    # Waits: 0, 10, 20 -> mean 10.
    assert resource.mean_wait() == pytest.approx(10.0)


def test_resource_release_without_acquire_fails(env):
    resource = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_zero_capacity_rejected(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_released_on_exception(env):
    resource = Resource(env, capacity=1)

    def failing(env):
        try:
            yield from resource.use(float("nan"))
        except Exception:
            pass

    def bad(env):
        yield resource.request()
        try:
            raise RuntimeError("work failed")
        finally:
            resource.release()

    def check(env):
        yield env.timeout(1.0)
        return resource.in_use

    try:
        env.process(bad(env))
        env.run()
    except RuntimeError:
        pass
    process = env.process(check(env))
    env.run()
    assert process.value == 0


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_fifo_order(env):
    store = Store(env)
    store.put("x")
    store.put("y")
    values = []

    def getter(env):
        for _ in range(2):
            value = yield store.get()
            values.append(value)

    env.process(getter(env))
    env.run()
    assert values == ["x", "y"]


def test_store_get_blocks_until_put(env):
    store = Store(env)
    log = []

    def getter(env):
        value = yield store.get()
        log.append((env.now, value))

    def putter(env):
        yield env.timeout(8.0)
        store.put("late")

    env.process(getter(env))
    env.process(putter(env))
    env.run()
    assert log == [(8.0, "late")]


def test_store_try_get(env):
    store = Store(env)
    assert store.try_get() == (False, None)
    store.put(5)
    assert store.try_get() == (True, 5)
    assert len(store) == 0


def test_store_counters(env):
    store = Store(env)
    store.put(1)
    store.put(2)
    store.get()
    assert store.total_put == 2
    assert store.total_got == 1


# ---------------------------------------------------------------------------
# Latch
# ---------------------------------------------------------------------------


def test_latch_opens_after_count(env):
    latch = Latch(env, count=3)
    assert not latch.event.triggered
    latch.count_down()
    latch.count_down()
    assert not latch.event.triggered
    latch.count_down()
    env.run()
    assert latch.event.triggered


def test_latch_zero_opens_immediately(env):
    latch = Latch(env, count=0)
    env.run()
    assert latch.event.triggered


def test_latch_overflow_rejected(env):
    latch = Latch(env, count=1)
    latch.count_down()
    with pytest.raises(SimulationError):
        latch.count_down()
