"""Calendar-queue scheduler vs a reference heapq model.

The kernel's two-tier scheduler (ready deque + calendar-queue wheel)
promises exactly the ordering a classic ``(time, sequence)`` binary heap
would produce.  These tests hold it to that promise:

* a hypothesis property drives both the kernel and a plain-``heapq``
  replay of its scheduling discipline over random sleep plans whose
  delays span six orders of magnitude — so timers cross bucket
  boundaries, land in the overflow list, and force re-epochs with fresh
  bucket widths mid-run — and requires identical wake logs;
* deterministic regressions pin the zero-delay FIFO fast path and the
  bare-float sleep lane's error handling.
"""

import heapq
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.simnet.kernel import Environment, SimulationError

# Delay magnitudes from sub-bucket to far-overflow values: small deltas
# exercise the current bucket, mid-range ones the bucket array, and the
# huge ones always land in overflow and stretch the next re-epoch's
# bucket width.  The small-integer arm makes *equal* wake times across
# different processes common — quantized think times do exactly this —
# so the same-instant batch dispatch's FIFO ordering is exercised hard.
_delay = st.one_of(
    st.just(0.0),
    st.integers(min_value=1, max_value=8).map(float),
    st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
    st.floats(min_value=10.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=1e4, max_value=1e8, allow_nan=False),
)
_plans = st.lists(
    st.lists(_delay, min_size=0, max_size=12), min_size=1, max_size=24
)


def _reference_wakes(plans):
    """Replay the seed kernel's scheduling discipline on a plain heapq.

    Process bootstrap is a FIFO deque; every sleep — zero-delay
    included — is a ``(time, sequence, process)`` heap entry with the
    sequence assigned at push time.  This is exactly the ordering the
    pre-wheel kernel produced, so equality here is the byte-identity
    argument for the calendar queue: zero-delay continuations land
    *behind* timers already due at the same instant, because those
    timers carry earlier sequence numbers.
    """
    ready = deque(range(len(plans)))
    positions = [0] * len(plans)
    heap = []
    sequence = 0
    now = 0.0
    log = []
    while ready or heap:
        if ready:
            pid = ready.popleft()
        else:
            now, _, pid = heapq.heappop(heap)
        log.append((now, pid))
        position = positions[pid]
        if position >= len(plans[pid]):
            continue
        positions[pid] += 1
        delay = plans[pid][position]
        sequence += 1
        heapq.heappush(heap, (now + delay, sequence, pid))
    return log


def _kernel_wakes(plans, use_timeout):
    env = Environment()
    log = []

    def proc(env, pid, delays):
        log.append((env.now, pid))
        for delay in delays:
            if use_timeout:
                yield env.timeout(delay)
            else:
                yield env.sleep(delay)
            log.append((env.now, pid))

    for pid, delays in enumerate(plans):
        env.process(proc(env, pid, delays))
    env.run()
    return log


@given(plans=_plans)
@settings(max_examples=120, deadline=None)
def test_sleep_lane_matches_heapq_reference(plans):
    assert _kernel_wakes(plans, use_timeout=False) == _reference_wakes(plans)


@given(plans=_plans)
@settings(max_examples=120, deadline=None)
def test_timeout_events_match_heapq_reference(plans):
    assert _kernel_wakes(plans, use_timeout=True) == _reference_wakes(plans)


def test_wheel_survives_epoch_crossing_burst():
    """A dense cluster plus far-future stragglers: several re-epochs.

    The cluster picks a narrow bucket width at the first rebuild; the
    stragglers all land in overflow and must come back, in order,
    through later rebuilds with much wider buckets.
    """
    env = Environment()
    fired = []

    def one(env, delay):
        yield env.sleep(delay)
        fired.append((env.now, delay))

    delays = [1.0 + 0.001 * i for i in range(500)]
    delays += [10_000.0 * (i + 1) for i in range(50)]
    for delay in delays:
        env.process(one(env, delay))
    env.run()
    assert [d for _, d in fired] == sorted(delays)
    assert env.now == max(delays)


def test_zero_delay_timeouts_dispatch_fifo():
    """Satellite regression: zero-delay Timeouts keep strict FIFO order."""
    env = Environment()
    order = []

    def proc(env, pid):
        yield env.timeout(0)
        order.append(pid)

    for pid in range(16):
        env.process(proc(env, pid))
    env.run()
    assert order == list(range(16))


def test_same_instant_wakes_then_zero_sleeps_keep_fifo():
    """Same-timestamp batch dispatch preserves schedule order, and the
    zero-delay continuations run after the batch, still in order."""
    env = Environment()
    order = []

    def proc(env, pid):
        yield env.sleep(5.0)
        order.append(("wake", pid))
        yield env.sleep(0.0)
        order.append(("zero", pid))

    for pid in range(8):
        env.process(proc(env, pid))
    env.run()
    expected = [("wake", pid) for pid in range(8)]
    expected += [("zero", pid) for pid in range(8)]
    assert order == expected


def test_sleep_rejects_negative_delay_eagerly():
    env = Environment()
    with pytest.raises(ValueError):
        env.sleep(-1.0)


def test_bare_negative_float_yield_fails_the_process():
    env = Environment()

    def proc(env):
        yield -1.0

    process = env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run()
    del process


def test_interrupt_while_sleeping_is_an_error():
    env = Environment()

    def sleeper(env):
        yield env.sleep(100.0)

    def meddler(env, target):
        yield env.timeout(1.0)
        target.interrupt("nope")

    target = env.process(sleeper(env))
    env.process(meddler(env, target))
    with pytest.raises(SimulationError):
        env.run()
