"""Property-based tests (hypothesis) for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet.kernel import Environment
from repro.simnet.primitives import Resource, Store

_settings = settings(max_examples=60, deadline=None)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=40))
@_settings
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def proc(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e4,
                                 allow_nan=False), min_size=1, max_size=25))
@_settings
def test_all_of_resolves_at_maximum(delays):
    env = Environment()

    def proc(env):
        yield env.all_of([env.timeout(d) for d in delays])
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e4,
                                 allow_nan=False), min_size=1, max_size=25))
@_settings
def test_any_of_resolves_at_minimum(delays):
    env = Environment()
    resolved_at = []

    def proc(env):
        yield env.any_of([env.timeout(d) for d in delays])
        resolved_at.append(env.now)

    env.process(proc(env))
    env.run()
    assert resolved_at == [min(delays)]


@given(
    capacity=st.integers(min_value=1, max_value=5),
    durations=st.lists(st.floats(min_value=0.1, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=20),
)
@_settings
def test_resource_total_busy_time_conserved(capacity, durations):
    """Work is neither lost nor duplicated under contention."""
    env = Environment()
    resource = Resource(env, capacity=capacity)

    def worker(env, duration):
        yield from resource.use(duration)

    for duration in durations:
        env.process(worker(env, duration))
    env.run()
    busy = resource.utilization() * env.now * capacity
    assert abs(busy - sum(durations)) < 1e-6 * max(1.0, sum(durations))


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
@_settings
def test_store_preserves_fifo_under_any_interleaving(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            store.put(item)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_simulation_determinism_under_any_seed(seed):
    """Two identical builds produce identical event logs."""
    from repro.simnet.rng import Streams

    def build():
        env = Environment()
        streams = Streams(seed)
        log = []

        def proc(env, name):
            for _ in range(5):
                yield env.timeout(streams.uniform(name, 0.1, 10.0))
                log.append((round(env.now, 9), name))

        for name in ("a", "b", "c"):
            env.process(proc(env, name))
        env.run()
        return log

    assert build() == build()
