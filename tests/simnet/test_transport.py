"""Unit tests for connections and connection pools."""

import pytest

from repro.simnet.transport import Connection, ConnectionPool, TransportError
from tests.helpers import run_process


def _noop_handler(env, work=0.0):
    def handler():
        if work:
            yield env.timeout(work)
        return "result"

    return handler


def test_open_costs_one_round_trip(env, network):
    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.open()
        return env.now

    # SYN (64B) + SYN-ACK (64B): two one-way trips of ~5 ms latency each.
    finished = run_process(env, proc())
    assert finished == pytest.approx(2 * 5.0, abs=0.5)
    assert connection.is_open


def test_double_open_rejected(env, network):
    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.open()
        yield from connection.open()

    with pytest.raises(TransportError):
        run_process(env, proc())


def test_request_on_closed_connection_rejected(env, network):
    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.request(100, _noop_handler(env), response_size=100)

    with pytest.raises(TransportError):
        run_process(env, proc())


def test_request_round_trip_and_handler(env, network):
    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.open()
        start = env.now
        result = yield from connection.request(
            1000, _noop_handler(env, work=3.0), response_size=1000
        )
        return result, env.now - start

    result, elapsed = run_process(env, proc())
    assert result == "result"
    # one round trip (2 x 5 ms) + handler 3 ms + transmission.
    assert elapsed == pytest.approx(13.0, abs=0.5)


def test_response_size_of_uses_result(env, network):
    connection = Connection(network, "a", "b")
    seen = {}

    def proc():
        yield from connection.open()
        yield from connection.request(
            100,
            _noop_handler(env),
            response_size_of=lambda r: seen.setdefault("size", 2048) and 2048,
        )

    run_process(env, proc())
    assert seen["size"] == 2048


def test_missing_response_size_is_an_error(env, network):
    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.open()
        yield from connection.request(100, _noop_handler(env))

    with pytest.raises(TransportError):
        run_process(env, proc())


def test_pool_reuses_connections(env, network):
    pool = ConnectionPool(network, kind="rmi")

    def proc():
        first = yield from pool.checkout("a", "b")
        pool.checkin(first)
        second = yield from pool.checkout("a", "b")
        pool.checkin(second)
        return first is second

    assert run_process(env, proc()) is True
    assert pool.opened == 1
    assert pool.reused == 1


def test_pool_distinguishes_pairs(env, network):
    pool = ConnectionPool(network, kind="rmi")

    def proc():
        first = yield from pool.checkout("a", "b")
        pool.checkin(first)
        other = yield from pool.checkout("b", "c")
        pool.checkin(other)
        return first is other

    assert run_process(env, proc()) is False
    assert pool.opened == 2


def test_pool_exchange_is_cheaper_when_warm(env, network):
    pool = ConnectionPool(network, kind="rmi")
    times = []

    def proc():
        for _ in range(2):
            start = env.now
            yield from pool.exchange(
                "a", "b", 500, _noop_handler(env), response_size=500
            )
            times.append(env.now - start)

    run_process(env, proc())
    assert times[1] < times[0]  # no handshake the second time


def test_pool_cap_closes_extras(env, network):
    pool = ConnectionPool(network, kind="rmi", max_per_pair=1)

    def proc():
        first = yield from pool.checkout("a", "b")
        second = yield from pool.checkout("a", "b")
        pool.checkin(first)
        pool.checkin(second)  # exceeds cap; should be closed
        return second.is_open

    assert run_process(env, proc()) is False


def test_transport_errors_name_the_pair_and_kind(env, network):
    connection = Connection(network, "a", "b", kind="rmi")

    def double_open():
        yield from connection.open()
        yield from connection.open()

    with pytest.raises(TransportError, match=r"rmi connection a->b is already open"):
        run_process(env, double_open())

    closed = Connection(network, "a", "b", kind="jdbc")

    def request_closed():
        yield from closed.request(100, _noop_handler(env), response_size=100)

    with pytest.raises(TransportError, match=r"closed jdbc connection a->b"):
        run_process(env, request_closed())


def test_request_deadline_checked_on_entry(env, network):
    from repro.simnet.transport import RequestTimeout

    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.open()
        yield env.timeout(50.0)
        yield from connection.request(
            100, _noop_handler(env), response_size=100, deadline=10.0
        )

    with pytest.raises(RequestTimeout, match="before the request was sent"):
        run_process(env, proc())


def test_request_deadline_checked_on_response(env, network):
    from repro.simnet.transport import RequestTimeout

    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.open()
        # The a<->b round trip alone is ~10 ms, so a 1 ms budget is
        # guaranteed to be missed; the response is paid for, then discarded.
        yield from connection.request(
            100,
            _noop_handler(env, work=5.0),
            response_size=100,
            deadline=env.now + 1.0,
        )

    with pytest.raises(RequestTimeout, match="after the deadline"):
        run_process(env, proc())


def test_no_deadline_never_times_out(env, network):
    connection = Connection(network, "a", "b")

    def proc():
        yield from connection.open()
        result = yield from connection.request(
            100, _noop_handler(env, work=10_000.0), response_size=100
        )
        return result

    assert run_process(env, proc()) == "result"


def test_pool_refuses_connections_to_down_nodes(env, network):
    from repro.simnet.transport import NodeUnavailable

    down = {"b"}
    pool = ConnectionPool(network, kind="rmi", availability=lambda node: node not in down)

    def refused():
        yield from pool.checkout("a", "b")

    with pytest.raises(NodeUnavailable, match=r"rmi connection a->b refused: node b is down"):
        run_process(env, refused())
    assert pool.refused == 1
    assert pool.opened == 0

    down.clear()

    def allowed():
        connection = yield from pool.checkout("a", "b")
        pool.checkin(connection)
        return connection.is_open

    assert run_process(env, allowed()) is True
    assert pool.opened == 1


def test_pool_reuse_after_close_opens_fresh(env, network):
    pool = ConnectionPool(network, kind="rmi")

    def proc():
        first = yield from pool.checkout("a", "b")
        first.close()
        pool.checkin(first)  # closed connections are not pooled
        second = yield from pool.checkout("a", "b")
        pool.checkin(second)
        return first is second

    assert run_process(env, proc()) is False
    assert pool.opened == 2
    assert pool.reused == 0


def test_drop_connections_to_closes_idle(env, network):
    pool = ConnectionPool(network, kind="rmi")

    def proc():
        to_b = yield from pool.checkout("a", "b")
        to_c = yield from pool.checkout("b", "c")
        pool.checkin(to_b)
        pool.checkin(to_c)
        dropped = pool.drop_connections_to("b")
        fresh = yield from pool.checkout("a", "b")
        pool.checkin(fresh)
        return dropped, to_b.is_open, to_c.is_open, fresh is to_b

    dropped, b_open, c_open, reused_dead = run_process(env, proc())
    assert dropped == 1
    assert b_open is False
    assert c_open is True  # only connections *to* b are dropped
    assert reused_dead is False
