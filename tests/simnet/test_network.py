"""Unit tests for nodes, links, routing and transfers."""

import pytest

from repro.simnet.network import Network, NetworkError
from tests.helpers import run_process


def test_add_duplicate_node_rejected(env, network):
    with pytest.raises(NetworkError):
        network.add_node("a")


def test_link_requires_existing_nodes(env, network):
    with pytest.raises(NetworkError):
        network.add_link("a", "zz", 1.0, 1000.0)


def test_self_link_rejected(env, network):
    with pytest.raises(NetworkError):
        network.add_link("a", "a", 1.0, 1000.0)


def test_route_is_hop_minimal(env, network):
    path = network.route("a", "c")
    assert [link.name for link in path] == ["a<->b", "b<->c"]


def test_route_unreachable_raises(env, network):
    network.add_node("island")
    with pytest.raises(NetworkError):
        network.route("a", "island")


def test_route_same_node_is_empty(env, network):
    assert network.route("a", "a") == []


def test_path_latency_sums_links(env, network):
    assert network.path_latency("a", "c") == pytest.approx(105.0)


def test_transfer_takes_latency_plus_transmission(env, network):
    def proc():
        yield from network.transfer("a", "b", 10_000)
        return env.now

    # 10_000 bytes / 10_000 bytes-per-ms = 1 ms transmission + 5 ms latency.
    assert run_process(env, proc()) == pytest.approx(6.0)


def test_transfer_multihop_store_and_forward(env, network):
    def proc():
        yield from network.transfer("a", "c", 10_000)
        return env.now

    # Hop1: 1 + 5; hop2: 0.8 + 100.
    assert run_process(env, proc()) == pytest.approx(6.0 + 0.8 + 100.0)


def test_loopback_transfer_is_free(env, network):
    def proc():
        yield from network.transfer("a", "a", 1_000_000)
        return env.now

    assert run_process(env, proc()) == 0.0


def test_transfer_negative_size_rejected(env, network):
    def proc():
        yield from network.transfer("a", "b", -1)

    with pytest.raises(ValueError):
        run_process(env, proc())


def test_bandwidth_contention_on_shared_link(env, network):
    finish = []

    def sender(env):
        yield from network.transfer("a", "b", 10_000)
        finish.append(env.now)

    env.process(sender(env))
    env.process(sender(env))
    env.run()
    # Second transfer queues behind the first's 1 ms transmission.
    assert finish == [pytest.approx(6.0), pytest.approx(7.0)]


def test_directions_do_not_contend(env, network):
    finish = []

    def sender(env, src, dst):
        yield from network.transfer(src, dst, 10_000)
        finish.append(env.now)

    env.process(sender(env, "a", "b"))
    env.process(sender(env, "b", "a"))
    env.run()
    assert finish == [pytest.approx(6.0), pytest.approx(6.0)]


def test_traffic_report_counts_per_direction(env, network):
    def proc():
        yield from network.transfer("a", "b", 500, kind="http")
        yield from network.transfer("b", "a", 900, kind="http")

    run_process(env, proc())
    report = network.traffic_report()["a<->b"]
    assert report["a->b"] == (1, 500)
    assert report["b->a"] == (1, 900)


def test_node_compute_charges_cpu(env, network):
    node = network.node("a")

    def proc():
        yield from node.compute(10.0)
        return env.now

    assert run_process(env, proc()) == 10.0


def test_node_compute_scales_with_speed(env):
    net = Network(env)
    fast = net.add_node("fast", cpus=1, cpu_speed=2.0)

    def proc():
        yield from fast.compute(10.0)
        return env.now

    assert run_process(env, proc()) == 5.0


def test_node_compute_rejects_negative(env, network):
    def proc():
        yield from network.node("a").compute(-1.0)

    with pytest.raises(ValueError):
        run_process(env, proc())


def test_unknown_node_raises(env, network):
    with pytest.raises(NetworkError):
        network.node("nope")
