"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simnet.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero(env):
    assert env.now == 0.0


def test_timeout_advances_clock(env):
    log = []

    def proc(env):
        yield env.timeout(5.0)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [5.0]


def test_events_fire_in_time_order(env):
    log = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        log.append(name)

    env.process(proc(env, "late", 10.0))
    env.process(proc(env, "early", 1.0))
    env.process(proc(env, "middle", 5.0))
    env.run()
    assert log == ["early", "middle", "late"]


def test_same_time_events_fire_in_schedule_order(env):
    log = []

    def proc(env, name):
        yield env.timeout(3.0)
        log.append(name)

    for name in ("first", "second", "third"):
        env.process(proc(env, name))
    env.run()
    assert log == ["first", "second", "third"]


def test_zero_delay_timeout_runs_immediately(env):
    log = []

    def proc(env):
        yield env.timeout(0.0)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [0.0]


def test_negative_timeout_rejected(env):
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value(env):
    def proc(env):
        yield env.timeout(1.0)
        return 42

    process = env.process(proc(env))
    env.run()
    assert process.value == 42


def test_yield_from_composition(env):
    def inner(env):
        yield env.timeout(2.0)
        return "inner-result"

    def outer(env):
        result = yield from inner(env)
        return result + "!"

    process = env.process(outer(env))
    env.run()
    assert process.value == "inner-result!"
    assert env.now == 2.0


def test_process_waits_on_another_process(env):
    def worker(env):
        yield env.timeout(7.0)
        return "done"

    def waiter(env):
        value = yield env.process(worker(env))
        return value

    process = env.process(waiter(env))
    env.run()
    assert process.value == "done"


def test_unhandled_process_exception_crashes_run(env):
    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_waited_on_failure_propagates_to_waiter(env):
    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("inner failure")

    def waiter(env):
        try:
            yield env.process(bad(env))
        except ValueError as error:
            return f"caught: {error}"

    process = env.process(waiter(env))
    env.run()
    assert process.value == "caught: inner failure"


def test_event_succeed_delivers_value(env):
    event = env.event()
    log = []

    def waiter(env, event):
        value = yield event
        log.append(value)

    def trigger(env, event):
        yield env.timeout(3.0)
        event.succeed("payload")

    env.process(waiter(env, event))
    env.process(trigger(env, event))
    env.run()
    assert log == ["payload"]


def test_event_cannot_trigger_twice(env):
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises(env):
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_fail_requires_exception(env):
    event = env.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_any_of_fires_on_first(env):
    def proc(env):
        first = env.timeout(2.0, value="fast")
        second = env.timeout(9.0, value="slow")
        result = yield env.any_of([first, second])
        return result

    process = env.process(proc(env))
    env.run()
    assert process.value == {0: "fast"}
    # AnyOf resolved at the first event; the env continues to the second.
    assert env.now == 9.0


def test_all_of_waits_for_every_event(env):
    def proc(env):
        events = [env.timeout(delay, value=delay) for delay in (1.0, 4.0, 2.0)]
        result = yield env.all_of(events)
        return (env.now, result)

    process = env.process(proc(env))
    env.run()
    now, result = process.value
    assert now == 4.0
    assert result == {0: 1.0, 1: 4.0, 2: 2.0}


def test_all_of_empty_fires_immediately(env):
    def proc(env):
        yield env.all_of([])
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 0.0


def test_interrupt_raises_in_process(env):
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, target):
        yield env.timeout(5.0)
        target.interrupt("wake up")

    target = env.process(sleeper(env))
    env.process(interrupter(env, target))
    env.run()
    assert log == [(5.0, "wake up")]


def test_interrupt_finished_process_rejected(env):
    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_run_until_stops_clock(env):
    def proc(env):
        yield env.timeout(100.0)

    env.process(proc(env))
    final = env.run(until=30.0)
    assert final == 30.0
    assert env.now == 30.0
    # Resuming completes the pending work.
    env.run()
    assert env.now == 100.0


def test_run_until_includes_boundary_events(env):
    log = []

    def proc(env):
        yield env.timeout(30.0)
        log.append(env.now)

    env.process(proc(env))
    env.run(until=30.0)
    assert log == [30.0]


def test_peek_reports_next_event_time(env):
    assert env.peek() is None
    env.timeout(5.0)
    assert env.peek() == 5.0


def test_step_executes_one_item(env):
    env.timeout(1.0)
    env.timeout(4.0)
    assert env.step() is True
    assert env.now == 1.0
    assert env.step() is True
    assert env.now == 4.0
    assert env.step() is False


def test_process_requires_generator(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yielding_non_event_is_an_error(env):
    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="must\\s+yield Event"):
        env.run()


def test_cross_environment_event_rejected(env):
    other = Environment()
    foreign = other.event()

    def proc(env):
        yield foreign

    env.process(proc(env))
    foreign.succeed()
    with pytest.raises(SimulationError):
        env.run()


def test_determinism_two_identical_runs():
    def build():
        env = Environment()
        log = []

        def proc(env, name, delay):
            for _ in range(3):
                yield env.timeout(delay)
                log.append((env.now, name))

        env.process(proc(env, "a", 1.5))
        env.process(proc(env, "b", 2.5))
        env.run()
        return log

    assert build() == build()


def test_run_until_boundary_runs_same_time_chains(env):
    """Work scheduled *at* ``until`` runs fully, including zero-delay
    follow-ups at the same timestamp."""
    log = []

    def follow_up(env):
        yield env.timeout(0.0)
        log.append(("follow-up", env.now))

    def proc(env):
        yield env.timeout(30.0)
        log.append(("boundary", env.now))
        env.process(follow_up(env))
        yield env.timeout(0.0)
        log.append(("same-time", env.now))

    env.process(proc(env))
    final = env.run(until=30.0)
    assert final == 30.0
    assert ("boundary", 30.0) in log
    assert ("same-time", 30.0) in log
    assert ("follow-up", 30.0) in log


def test_run_until_excludes_events_after_boundary(env):
    log = []

    def proc(env, delay):
        yield env.timeout(delay)
        log.append(env.now)

    env.process(proc(env, 30.0))
    env.process(proc(env, 30.0 + 1e-9))
    env.run(until=30.0)
    assert log == [30.0]
    assert env.now == 30.0
    env.run()
    assert log == [30.0, 30.0 + 1e-9]


def test_run_until_with_empty_heap_advances_clock(env):
    assert env.run(until=75.0) == 75.0
    assert env.now == 75.0
    # Running to an earlier point never moves the clock backwards.
    assert env.run(until=10.0) == 75.0
