"""Unit tests for Click-style router elements."""

import pytest

from repro.simnet.kernel import Environment
from repro.simnet.router import (
    BandwidthShaper,
    Classifier,
    Counter,
    ElementChain,
    FixedDelay,
    LossElement,
    Packet,
    PacketLoss,
    TokenBucketShaper,
)
from repro.simnet.rng import Streams
from tests.helpers import run_process


def traverse(env, element_or_chain, packet):
    def proc():
        yield from element_or_chain.traverse(packet)
        return env.now

    return run_process(env, proc())


def test_fixed_delay_adds_latency(env):
    element = FixedDelay(env, 100.0)
    finished = traverse(env, element, Packet("a", "b", 1000))
    assert finished == 100.0


def test_fixed_delay_zero_is_free(env):
    element = FixedDelay(env, 0.0)
    assert traverse(env, element, Packet("a", "b", 1000)) == 0.0


def test_fixed_delay_rejects_negative(env):
    with pytest.raises(ValueError):
        FixedDelay(env, -1.0)


def test_bandwidth_shaper_transmission_time(env):
    shaper = BandwidthShaper(env, bandwidth=1000.0)  # bytes/ms
    assert traverse(env, shaper, Packet("a", "b", 5000)) == pytest.approx(5.0)


def test_bandwidth_shaper_serializes_packets(env):
    shaper = BandwidthShaper(env, bandwidth=1000.0)
    finish_times = []

    def sender(env, size):
        yield from shaper.traverse(Packet("a", "b", size))
        finish_times.append(env.now)

    env.process(sender(env, 5000))
    env.process(sender(env, 5000))
    env.run()
    assert finish_times == [pytest.approx(5.0), pytest.approx(10.0)]


def test_bandwidth_shaper_rejects_zero(env):
    with pytest.raises(ValueError):
        BandwidthShaper(env, bandwidth=0.0)


def test_token_bucket_burst_passes_at_line_rate(env):
    bucket = TokenBucketShaper(env, rate=100.0, burst=10_000.0)
    assert traverse(env, bucket, Packet("a", "b", 5000)) == 0.0


def test_token_bucket_throttles_beyond_burst(env):
    bucket = TokenBucketShaper(env, rate=100.0, burst=1_000.0)

    def proc():
        yield from bucket.traverse(Packet("a", "b", 1_000))  # drains the bucket
        yield from bucket.traverse(Packet("a", "b", 2_000))  # needs 20 ms refill
        return env.now

    assert run_process(env, proc()) == pytest.approx(20.0)


def test_counter_counts_packets_and_bytes(env):
    counter = Counter()

    def proc():
        yield from ElementChain([counter]).traverse(Packet("a", "b", 700, kind="rmi"))
        yield from ElementChain([counter]).traverse(Packet("a", "b", 300, kind="http"))

    run_process(env, proc())
    assert counter.packets == 2
    assert counter.bytes == 1000
    assert counter.by_kind["rmi"] == [1, 700]


def test_classifier_routes_by_kind(env):
    slow = ElementChain([FixedDelay(env, 50.0)])
    classifier = Classifier({"bulk": slow})

    assert traverse(env, classifier, Packet("a", "b", 10, kind="bulk")) == 50.0
    env2 = Environment()
    classifier2 = Classifier({"bulk": ElementChain([FixedDelay(env2, 50.0)])})

    def proc():
        yield from classifier2.traverse(Packet("a", "b", 10, kind="other"))
        return env2.now

    assert run_process(env2, proc()) == 0.0


def test_loss_element_drops_probabilistically(env):
    streams = Streams(5)
    loss = LossElement(1.0, streams)

    def proc():
        yield from loss.traverse(Packet("a", "b", 10))

    with pytest.raises(PacketLoss):
        run_process(env, proc())
    assert loss.dropped == 1


def test_loss_element_zero_probability_never_drops(env):
    streams = Streams(5)
    loss = LossElement(0.0, streams)

    def proc():
        for _ in range(100):
            yield from loss.traverse(Packet("a", "b", 10))

    run_process(env, proc())
    assert loss.dropped == 0


def test_loss_element_rejects_bad_probability(env):
    with pytest.raises(ValueError):
        LossElement(1.5, Streams(1))


def test_element_chain_composes_delays(env):
    chain = ElementChain(
        [Counter(), BandwidthShaper(env, 1000.0), FixedDelay(env, 100.0)]
    )
    finished = traverse(env, chain, Packet("a", "b", 5000))
    assert finished == pytest.approx(105.0)


def test_element_chain_find(env):
    counter = Counter()
    chain = ElementChain([counter, FixedDelay(env, 1.0)])
    assert chain.find(Counter) is counter
    assert chain.find(BandwidthShaper) is None
