"""Unit tests for deterministic RNG streams."""

import pytest

from repro.simnet.rng import Streams


def test_same_seed_same_draws():
    a = Streams(99)
    b = Streams(99)
    assert [a.uniform("x", 0, 1) for _ in range(5)] == [
        b.uniform("x", 0, 1) for _ in range(5)
    ]


def test_different_seeds_differ():
    a = Streams(1)
    b = Streams(2)
    assert [a.uniform("x", 0, 1) for _ in range(5)] != [
        b.uniform("x", 0, 1) for _ in range(5)
    ]


def test_streams_are_independent():
    """Draws on one stream do not perturb another."""
    a = Streams(7)
    b = Streams(7)
    for _ in range(100):
        a.uniform("noise", 0, 1)  # extra draws on an unrelated stream
    assert a.uniform("signal", 0, 1) == b.uniform("signal", 0, 1)


def test_stream_reuse_returns_same_object():
    streams = Streams(5)
    assert streams.get("a") is streams.get("a")
    assert streams.get("a") is not streams.get("b")


def test_expovariate_mean():
    streams = Streams(11)
    draws = [streams.expovariate("e", mean=50.0) for _ in range(20_000)]
    assert sum(draws) / len(draws) == pytest.approx(50.0, rel=0.05)


def test_expovariate_rejects_non_positive_mean():
    with pytest.raises(ValueError):
        Streams(1).expovariate("e", mean=0.0)


def test_weighted_choice_respects_weights():
    streams = Streams(3)
    draws = [
        streams.weighted_choice("w", ["a", "b"], [9.0, 1.0]) for _ in range(10_000)
    ]
    share_a = draws.count("a") / len(draws)
    assert share_a == pytest.approx(0.9, abs=0.03)


def test_weighted_choice_length_mismatch():
    with pytest.raises(ValueError):
        Streams(1).weighted_choice("w", ["a"], [1.0, 2.0])


def test_jitter_bounds():
    streams = Streams(13)
    for _ in range(1000):
        value = streams.jitter("j", base=100.0, fraction=0.2)
        assert 80.0 <= value <= 120.0


def test_jitter_rejects_negative_base():
    with pytest.raises(ValueError):
        Streams(1).jitter("j", base=-1.0)


def test_randint_and_sample_deterministic():
    a = Streams(21)
    b = Streams(21)
    assert a.randint("r", 0, 100) == b.randint("r", 0, 100)
    assert a.sample("s", range(50), 5) == b.sample("s", range(50), 5)
