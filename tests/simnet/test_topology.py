"""Unit tests for the paper's testbed topology (§3.1)."""

import pytest

from repro.simnet.topology import MBIT_PER_S, TestbedConfig, build_testbed
from tests.helpers import run_process


def test_default_testbed_structure(testbed):
    assert testbed.main_server == "main"
    assert testbed.edge_servers == ["edge1", "edge2"]
    assert testbed.db_server == "db"
    assert testbed.app_servers == ["main", "edge1", "edge2"]


def test_three_clients_per_server(testbed):
    for server in testbed.app_servers:
        assert len(testbed.clients_of(server)) == 3


def test_wan_latency_is_100ms_each_way(env, testbed):
    def proc():
        start = env.now
        yield from testbed.network.transfer("edge1", "main", 100)
        return env.now - start

    elapsed = run_process(env, proc())
    assert elapsed == pytest.approx(100.0, abs=2.0)


def test_lan_is_sub_millisecond(env, testbed):
    def proc():
        start = env.now
        yield from testbed.network.transfer("client-main-0", "main", 100)
        return env.now - start

    assert run_process(env, proc()) < 1.0


def test_wide_area_predicate(testbed):
    assert testbed.is_wide_area("edge1", "main")
    assert testbed.is_wide_area("edge1", "edge2")
    assert not testbed.is_wide_area("client-main-0", "main")
    assert not testbed.is_wide_area("main", "db")
    assert not testbed.is_wide_area("main", "main")


def test_db_colocated_variant(env):
    testbed = build_testbed(env, TestbedConfig(db_colocated=True))
    assert testbed.db_server == "main"
    assert "db" not in testbed.network.nodes


def test_wan_bandwidth_is_100mbit(testbed):
    assert testbed.config.wan_bandwidth == pytest.approx(100 * MBIT_PER_S)
    assert 100 * MBIT_PER_S == pytest.approx(12_500.0)


def test_custom_edge_count(env):
    testbed = build_testbed(env, TestbedConfig(edge_servers=4))
    assert len(testbed.edge_servers) == 4
    assert len(testbed.app_servers) == 5


def test_unknown_client_group_raises(testbed):
    with pytest.raises(KeyError):
        testbed.clients_of("nope")
