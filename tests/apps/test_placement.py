"""Placement tests: the deployment plans match the paper's §4 narrative."""

import pytest

from repro.apps import petstore, rubis
from repro.core.automation import configure_for_level
from repro.core.patterns import PatternLevel
from repro.core.planner import plan_deployment

ALL = ["main", "edge1", "edge2"]


def _plan(build, level, **kwargs):
    app = build(PatternLevel(level), **kwargs)
    configure_for_level(app, PatternLevel(level))
    return plan_deployment(app, "main", ["edge1", "edge2"], PatternLevel(level))


# ---------------------------------------------------------------------------
# Pet Store
# ---------------------------------------------------------------------------


def test_petstore_level1_all_on_main():
    plan = _plan(petstore.build_application, PatternLevel.CENTRALIZED)
    for component, servers in plan.placements.items():
        assert servers == ["main"], component


def test_petstore_level2_placement():
    """§4.2: "deploying all web components (JSPs and servlets) and
    stateful session beans in all three servers"."""
    plan = _plan(petstore.build_application, PatternLevel.REMOTE_FACADE)
    for stateful in ("ShoppingCart", "ShoppingClientController", "CustomerSession"):
        assert plan.servers_of(stateful) == ALL, stateful
    for page in petstore.ALL_PAGES:
        assert plan.servers_of(f"servlet.{page}") == ALL, page
    # Façades and entities stay with the database.
    for central in ("Catalog", "SignOnFacade", "OrderFacade", "Item", "Inventory"):
        assert plan.servers_of(central) == ["main"], central
    assert plan.replicas == {}


def test_petstore_level3_placement():
    """§4.3: read-only beans and the Catalog bean also on the edges."""
    plan = _plan(petstore.build_application, PatternLevel.STATEFUL_CACHING)
    assert plan.servers_of("Catalog") == ALL
    for bean in ("Category", "Product", "Item", "Inventory"):
        assert plan.replica_servers_of(bean) == ALL, bean
    # The buyer-path façades never leave the main server.
    for central in ("SignOnFacade", "CustomerFacade", "OrderFacade"):
        assert plan.servers_of(central) == ["main"], central
    # SignOn/Account/Order have no replicas.
    for bean in ("SignOn", "Account", "Order", "LineItem"):
        assert plan.replica_servers_of(bean) == [], bean


def test_petstore_level4_adds_query_caches_only():
    level3 = _plan(petstore.build_application, PatternLevel.STATEFUL_CACHING)
    level4 = _plan(petstore.build_application, PatternLevel.QUERY_CACHING)
    assert level4.query_cache_servers == ALL
    assert level3.query_cache_servers == []
    assert level4.placements == level3.placements


def test_petstore_level5_adds_subscribers():
    from repro.middleware.updates import UPDATE_SUBSCRIBER

    plan = _plan(petstore.build_application, PatternLevel.ASYNC_UPDATES)
    assert plan.servers_of(UPDATE_SUBSCRIBER) == ALL


# ---------------------------------------------------------------------------
# RUBiS
# ---------------------------------------------------------------------------


def test_rubis_level2_only_web_components_move():
    """§4.2: "RUBiS does not use stateful session beans, so only web
    components were deployed in the edge servers"."""
    plan = _plan(rubis.build_application, PatternLevel.REMOTE_FACADE)
    for page in rubis.ALL_PAGES:
        assert plan.servers_of(f"servlet.{page}") == ALL, page
    for facade in (
        "SB_ViewItem", "SB_ViewBidHistory", "SB_ViewUserInfo",
        "SB_BrowseCategories", "SB_PutBid", "SB_StoreBid",
    ):
        assert plan.servers_of(facade) == ["main"], facade


def test_rubis_level3_view_facades_and_replicas():
    """§4.3: "The read-only beans and SB_ViewBidHistory, SB_ViewItem, and
    SB_ViewUserInfo façade stateless session beans were also deployed on
    the edge servers"."""
    plan = _plan(rubis.build_application, PatternLevel.STATEFUL_CACHING)
    for facade in ("SB_ViewItem", "SB_ViewBidHistory", "SB_ViewUserInfo"):
        assert plan.servers_of(facade) == ALL, facade
    for bean in ("RubisItem", "User"):
        assert plan.replica_servers_of(bean) == ALL, bean
    # Browse/form façades move only with the query caches (level 4).
    for facade in ("SB_BrowseCategories", "SB_PutBid", "SB_PutComment"):
        assert plan.servers_of(facade) == ["main"], facade


def test_rubis_level4_caching_facades_move():
    """§4.4: "The query result caches were naturally incorporated in those
    stateless session beans that make corresponding finder method
    invocations" — so those beans deploy wherever the caches live."""
    plan = _plan(rubis.build_application, PatternLevel.QUERY_CACHING)
    for facade in (
        "SB_BrowseCategories", "SB_BrowseRegions", "SB_SearchItemsInCategory",
        "SB_SearchItemsInCategoryRegion", "SB_PutBid", "SB_PutComment",
    ):
        assert plan.servers_of(facade) == ALL, facade
    # Writers stay centralized forever.
    for facade in ("SB_StoreBid", "SB_StoreComment"):
        assert plan.servers_of(facade) == ["main"], facade


def test_rubis_entities_never_replicate_beyond_item_and_user():
    plan = _plan(rubis.build_application, PatternLevel.ASYNC_UPDATES)
    assert set(plan.replicas) == {"RubisItem", "User"}
    for bean in ("Region", "Category", "Bid", "Comment"):
        assert plan.servers_of(bean) == ["main"], bean
