"""Property test: learned method footprints match the executed SQL.

For every method annotated ``cached_methods`` in RUBiS and Pet Store,
invoke it cold on a level-6 edge and compare the footprint the method
cache *learned* against ground truth taken from the database itself:
the set of tables named by the query plans (joins and index paths
included) of every JDBC statement the invocation actually executed.
The two are derived by different code paths — the cache from the SQL
ASTs flowing through the collector, the ground truth from the planner's
chosen access paths — so agreement means the auto-derivation misses
nothing and invents nothing.
"""

import pytest

from repro.apps import petstore, rubis
from repro.core.distribution import distribute
from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.server import AppServer
from repro.rdbms.sql import Insert, Select, parse_cached
from repro.simnet.kernel import Environment
from repro.simnet.rng import Streams
from repro.simnet.topology import TestbedConfig, build_testbed
from tests.helpers import run_process


@pytest.fixture(scope="module")
def rubis_data():
    return rubis.populate_rubis(Streams(21))


@pytest.fixture(scope="module")
def petstore_data():
    return petstore.populate_petstore(Streams(22))


def _rubis_cases(catalog):
    return [
        ("SB_BrowseCategories", "get_all", ()),
        ("SB_BrowseCategories", "get_for_region", (catalog.region_ids[0],)),
        ("SB_BrowseRegions", "get_all", ()),
        ("SB_SearchItemsInCategory", "get", (catalog.category_ids[0],)),
        (
            "SB_SearchItemsInCategoryRegion",
            "get",
            (catalog.category_ids[0], catalog.region_ids[0]),
        ),
        ("SB_ViewItem", "get", (catalog.item_ids[0],)),
        ("SB_ViewBidHistory", "get", (catalog.item_ids[0],)),
        ("SB_ViewUserInfo", "get", (catalog.user_ids[0],)),
    ]


def _petstore_cases(catalog):
    return [
        ("Catalog", "get_category_page", (catalog.category_ids[0],)),
        ("Catalog", "get_product_page", (catalog.product_ids[0],)),
        ("Catalog", "get_item_page", (catalog.item_ids[0],)),
        ("Catalog", "get_item_details", (catalog.item_ids[0],)),
    ]


def _cold_system(build_application, database, catalog):
    """A fresh level-6 deployment with cold replicas and caches."""
    env = Environment()
    testbed = build_testbed(env, TestbedConfig(db_colocated=True))
    application = build_application(PatternLevel.METHOD_CACHING, catalog=catalog)
    system = distribute(
        env, testbed, application, PatternLevel.METHOD_CACHING, database
    )
    return env, system


def _invoke(env, system, component, method, args):
    server = system.servers["edge1"]
    ctx = InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("fp", "test", "fp", "client-edge1-0"),
        costs=server.costs,
    )

    def proc():
        facade = yield from server.lookup(ctx, component)
        result = yield from facade.call(ctx, method, *args)
        return result

    return run_process(env, proc())


def _ground_truth_tables(database, statements):
    """Tables named by the planner's chosen plans for executed statements."""
    tables = set()
    for sql, params in statements:
        statement = parse_cached(sql)
        if isinstance(statement, Select):
            plan = database.explain(statement, params)
            tables.update(
                node.table for node in plan.root.walk() if node.table
            )
        elif isinstance(statement, Insert):
            tables.add(statement.table)
        else:  # UPDATE / DELETE
            tables.add(statement.table)
    return tables


def _assert_footprints(monkeypatch, build_application, database, catalog, cases):
    executed = []
    original = AppServer.db_execute

    def spy(self, ctx, sql, params=()):
        executed.append((sql, params))
        result = yield from original(self, ctx, sql, params)
        return result

    monkeypatch.setattr(AppServer, "db_execute", spy)

    for component, method, args in cases:
        env, system = _cold_system(build_application, database, catalog)
        cache = system.servers["edge1"].method_cache
        assert cache is not None and cache.intercepts(component, method)
        executed.clear()
        _invoke(env, system, component, method, args)
        learned = cache.footprint_of(component, method)
        assert learned is not None, (component, method)
        truth = _ground_truth_tables(database, executed)
        assert set(learned) == truth, (component, method, learned, truth)
        # Annotated methods are read-only: nothing may hit the write set.
        assert (component, method) not in cache.write_violations
        assert truth, (component, method)  # a cold read must touch tables


def _annotated(application):
    return {
        (name, method)
        for name, descriptor in application.components.items()
        for method in descriptor.cached_methods
    }


def test_cases_cover_every_annotated_rubis_method(rubis_data):
    _, catalog = rubis_data
    app = rubis.build_application(PatternLevel.METHOD_CACHING, catalog=catalog)
    covered = {(c, m) for c, m, _ in _rubis_cases(catalog)}
    assert covered == _annotated(app)


def test_cases_cover_every_annotated_petstore_method(petstore_data):
    _, catalog = petstore_data
    app = petstore.build_application(PatternLevel.METHOD_CACHING, catalog=catalog)
    covered = {(c, m) for c, m, _ in _petstore_cases(catalog)}
    assert covered == _annotated(app)


def test_rubis_footprints_match_executed_statements(monkeypatch, rubis_data):
    database, catalog = rubis_data
    _assert_footprints(
        monkeypatch, rubis.build_application, database, catalog,
        _rubis_cases(catalog),
    )


def test_petstore_footprints_match_executed_statements(monkeypatch, petstore_data):
    database, catalog = petstore_data
    _assert_footprints(
        monkeypatch, petstore.build_application, database, catalog,
        _petstore_cases(catalog),
    )
