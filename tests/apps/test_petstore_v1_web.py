"""Tests for the original (direct-JDBC) Pet Store web tier (V1, §4.2).

The centralized configuration runs the web tier that talks to the
database directly.  V1 and V2 must render the same page *content*; only
their communication structure differs — which is what makes V1
catastrophic at the edge (the `ablate_edge_jdbc` ablation).
"""

import pytest

from repro.apps.petstore import build_application, populate_petstore
from repro.core.distribution import distribute
from repro.core.patterns import PatternLevel
from repro.middleware.web import WebRequest, http_get
from repro.simnet.kernel import Environment
from repro.simnet.monitor import Trace
from repro.simnet.rng import Streams
from repro.simnet.topology import TestbedConfig, build_testbed
from tests.helpers import run_process


@pytest.fixture(scope="module")
def systems():
    """(V1 centralized system, V2 façade system) over identical data."""
    built = {}
    for label, level in (("v1", PatternLevel.CENTRALIZED), ("v2", PatternLevel.REMOTE_FACADE)):
        database, catalog = populate_petstore(Streams(123))
        env = Environment()
        testbed = build_testbed(env, TestbedConfig())
        trace = Trace()
        system = distribute(
            env, testbed, build_application(level), level, database, trace=trace
        )
        built[label] = (env, system, catalog)
    return built


def _get(env, system, page, params, client="client-main-0"):
    def proc():
        request = WebRequest(page=page, params=dict(params),
                             session_id="v1-test", client_node=client)
        response = yield from http_get(env, system.entry_server_for(client), request)
        return response

    return run_process(env, proc())


@pytest.mark.parametrize("page,params_key", [
    ("Category", "category_id"),
    ("Product", "product_id"),
    ("Item", "item_id"),
])
def test_v1_and_v2_render_identical_data(systems, page, params_key):
    env1, system1, catalog = systems["v1"]
    env2, system2, _catalog2 = systems["v2"]
    key_values = {
        "category_id": catalog.category_ids[0],
        "product_id": catalog.product_ids[0],
        "item_id": catalog.item_ids[0],
    }
    params = {params_key: key_values[params_key]}
    v1 = _get(env1, system1, page, params)
    v2 = _get(env2, system2, page, params)
    assert v1.status == v2.status == 200
    # Same listing sizes / same entity data regardless of access path.
    if page == "Category":
        assert v1.data["products"] == v2.data["products"]
    elif page == "Product":
        assert v1.data["items"] == v2.data["items"]
    else:
        assert v1.data["quantity"] == v2.data["quantity"]
        assert v1.data["item"]["id"] == v2.data["item"]["id"]


def test_v1_search_matches_v2(systems):
    env1, system1, catalog = systems["v1"]
    env2, system2, _ = systems["v2"]
    keyword = catalog.keywords[0]
    v1 = _get(env1, system1, "Search", {"keyword": keyword})
    v2 = _get(env2, system2, "Search", {"keyword": keyword})
    assert v1.data["matches"] == v2.data["matches"] > 0


def test_v1_issues_multiple_jdbc_statements_per_page(systems):
    env, system, catalog = systems["v1"]
    trace = system.trace
    before = len(trace.by_kind("jdbc"))
    _get(env, system, "Category", {"category_id": catalog.category_ids[1]})
    jdbc_calls = [
        record for record in trace.by_kind("jdbc")[before:]
        if record.page == "Category"
    ]
    # The V1 page queries the category row and the product list separately.
    assert len(jdbc_calls) == 2


def test_v2_issues_no_web_tier_jdbc(systems):
    env, system, catalog = systems["v2"]
    trace = system.trace
    before = len(trace.by_kind("jdbc"))
    _get(env, system, "Item", {"item_id": catalog.item_ids[1]})
    new_jdbc = trace.by_kind("jdbc")[before:]
    # The façade (and its entity beans) own all database access; the
    # servlet itself issues none from the web tier... on the main server
    # the façade runs in-VM, so JDBC still happens — but always below the
    # Catalog bean, never from the servlet.  Structural check: every call
    # originated on the main server where the entities live.
    assert all(record.src_node == "main" for record in new_jdbc)
