"""Tests for the Pet Store application: data, pages, and behaviour."""

import pytest

from repro.apps.petstore import (
    BROWSER_PAGES,
    BUYER_PAGES,
    browser_pattern,
    build_application,
    buyer_pattern,
    populate_petstore,
)
from repro.core.distribution import distribute
from repro.core.patterns import PatternLevel
from repro.middleware.descriptors import ComponentKind
from repro.middleware.web import WebRequest, http_get
from repro.simnet.kernel import Environment
from repro.simnet.rng import Streams
from repro.simnet.topology import TestbedConfig, build_testbed
from tests.helpers import run_process


@pytest.fixture(scope="module")
def catalog_and_db():
    return populate_petstore(Streams(5))


def _system(level, db):
    env = Environment()
    testbed = build_testbed(env, TestbedConfig())
    system = distribute(
        env, testbed, build_application(level), PatternLevel(level), db
    )
    system.warm_replicas()
    return env, system


def _get(env, system, client, page, params, session="ps-test"):
    def proc():
        server = system.entry_server_for(client)
        request = WebRequest(
            page=page, params=dict(params), session_id=session, client_node=client
        )
        response = yield from http_get(env, server, request)
        return response

    return run_process(env, proc())


# ---------------------------------------------------------------------------
# Data generation
# ---------------------------------------------------------------------------


def test_data_sizes_match_paper(catalog_and_db):
    db, catalog = catalog_and_db
    # "we added five artificial categories, 50 products and 300 items"
    assert len(catalog.category_ids) == 10  # 5 original + 5 artificial
    assert len(catalog.product_ids) == 66
    assert len(catalog.item_ids) == 350
    assert len(db.tables["inventory"]) == 350
    assert len(catalog.user_ids) == 200


def test_referential_integrity(catalog_and_db):
    db, catalog = catalog_and_db
    for category_id, products in catalog.products_by_category.items():
        for product_id in products:
            row = db.execute(
                "SELECT category_id FROM product WHERE id = ?", (product_id,)
            ).first()
            assert row["category_id"] == category_id
    for product_id, items in catalog.items_by_product.items():
        for item_id in items:
            row = db.execute(
                "SELECT product_id FROM item WHERE id = ?", (item_id,)
            ).first()
            assert row["product_id"] == product_id


def test_every_account_has_signon(catalog_and_db):
    db, catalog = catalog_and_db
    assert len(db.tables["signon"]) == len(db.tables["account"])


# ---------------------------------------------------------------------------
# Application descriptor
# ---------------------------------------------------------------------------


def test_application_has_all_pages():
    app = build_application(PatternLevel.REMOTE_FACADE)
    for page in set(BROWSER_PAGES) | set(BUYER_PAGES):
        assert page in app.servlets, page


def test_entities_are_local_only():
    app = build_application(PatternLevel.REMOTE_FACADE)
    for descriptor in app.entities():
        assert not descriptor.remote_interface, descriptor.name


def test_read_mostly_beans_match_paper():
    app = build_application(PatternLevel.STATEFUL_CACHING)
    replicated = {
        name for name, d in app.components.items() if d.read_mostly is not None
    }
    assert replicated == {"Category", "Product", "Item", "Inventory"}


def test_centralized_uses_direct_jdbc_servlets():
    from repro.apps.petstore.web import CategoryServletV1, CategoryServletV2

    v1_app = build_application(PatternLevel.CENTRALIZED)
    v2_app = build_application(PatternLevel.REMOTE_FACADE)
    assert v1_app.components["servlet.Category"].impl is CategoryServletV1
    assert v2_app.components["servlet.Category"].impl is CategoryServletV2


# ---------------------------------------------------------------------------
# Page behaviour (level 3 system, warm)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def level3(catalog_and_db):
    db, catalog = populate_petstore(Streams(6))
    env, system = _system(PatternLevel.STATEFUL_CACHING, db)
    return env, system, catalog


def test_category_page_lists_products(level3):
    env, system, catalog = level3
    category_id = catalog.category_ids[0]
    response = _get(env, system, "client-main-0", "Category", {"category_id": category_id})
    assert response.status == 200
    assert response.data["products"] == len(catalog.products_by_category[category_id])


def test_item_page_shows_quantity(level3):
    env, system, catalog = level3
    response = _get(env, system, "client-main-0", "Item", {"item_id": catalog.item_ids[0]})
    assert response.data["quantity"] == 10_000
    assert response.data["item"]["id"] == catalog.item_ids[0]


def test_search_finds_breed_keywords(level3):
    env, system, catalog = level3
    response = _get(env, system, "client-main-0", "Search", {"keyword": catalog.keywords[0]})
    assert response.data["matches"] > 0


def test_signin_flow_and_billing(level3):
    env, system, catalog = level3
    session = "buyer-flow-1"
    ok = _get(
        env, system, "client-main-0", "Verify Signin",
        {"user_id": "user3", "password": "pw-3"}, session=session,
    )
    assert ok.data["signed_in"] is True
    billing = _get(env, system, "client-main-0", "Billing", {}, session=session)
    assert billing.data["user_id"] == "user3"


def test_bad_password_rejected(level3):
    env, system, catalog = level3
    response = _get(
        env, system, "client-main-0", "Verify Signin",
        {"user_id": "user3", "password": "wrong"}, session="bad-pw",
    )
    assert response.status == 401
    assert response.data["signed_in"] is False


def test_full_buyer_session_decrements_inventory(level3):
    env, system, catalog = level3
    item_id = catalog.item_ids[10]
    database = system.db_server.database
    before = database.execute(
        "SELECT quantity FROM inventory WHERE item_id = ?", (item_id,)
    ).scalar()
    session = "buyer-flow-2"
    _get(env, system, "client-main-0", "Verify Signin",
         {"user_id": "user7", "password": "pw-7"}, session=session)
    cart = _get(env, system, "client-main-0", "Shopping Cart",
                {"item_id": item_id, "quantity": 2}, session=session)
    assert cart.data["cart_size"] == 1
    receipt = _get(env, system, "client-main-0", "Commit Order", {}, session=session)
    assert receipt.data["order_id"] >= 100_000
    after = database.execute(
        "SELECT quantity FROM inventory WHERE item_id = ?", (item_id,)
    ).scalar()
    assert after == before - 2
    order_row = database.execute(
        "SELECT user_id, status FROM orders WHERE id = ?", (receipt.data["order_id"],)
    ).first()
    assert order_row == {"user_id": "user7", "status": "PLACED"}


def test_signout_clears_session(level3):
    env, system, catalog = level3
    session = "buyer-flow-3"
    _get(env, system, "client-main-0", "Verify Signin",
         {"user_id": "user9", "password": "pw-9"}, session=session)
    response = _get(env, system, "client-main-0", "Signout", {}, session=session)
    assert response.data["signed_out"] is True
    # Billing now fails because the customer session is gone.
    with pytest.raises(Exception):
        _get(env, system, "client-main-0", "Billing", {}, session=session)


def test_commit_without_items_fails(level3):
    env, system, catalog = level3
    session = "buyer-flow-4"
    _get(env, system, "client-main-0", "Verify Signin",
         {"user_id": "user2", "password": "pw-2"}, session=session)
    with pytest.raises(ValueError):
        _get(env, system, "client-main-0", "Commit Order", {}, session=session)


# ---------------------------------------------------------------------------
# Usage patterns
# ---------------------------------------------------------------------------


def test_browser_sessions_are_20_pages(catalog_and_db):
    _db, catalog = catalog_and_db
    visits = browser_pattern(catalog).session(Streams(9), 0)
    assert len(visits) == 20
    assert visits[0].page == "Main"


def test_browser_item_follows_product(catalog_and_db):
    _db, catalog = catalog_and_db
    pattern = browser_pattern(catalog)
    streams = Streams(10)
    for session_index in range(5):
        visits = pattern.session(streams, session_index)
        for index, visit in enumerate(visits):
            if visit.page == "Item" and index > 0:
                previous = visits[index - 1]
                assert previous.page == "Product"
                product_items = catalog.items_by_product[previous.params["product_id"]]
                assert visit.params["item_id"] in product_items


def test_buyer_script_matches_table3(catalog_and_db):
    _db, catalog = catalog_and_db
    visits = buyer_pattern(catalog).session(Streams(11), 0)
    assert [v.page for v in visits] == BUYER_PAGES


def test_buyer_credentials_are_consistent(catalog_and_db):
    _db, catalog = catalog_and_db
    visits = buyer_pattern(catalog).session(Streams(12), 0)
    signin = next(v for v in visits if v.page == "Verify Signin")
    index = int(signin.params["user_id"].replace("user", ""))
    assert signin.params["password"] == f"pw-{index}"
