"""Tests for the RUBiS application: data, pages, and behaviour."""

import pytest

from repro.apps.rubis import (
    BIDDER_PAGES,
    BROWSER_PAGES,
    bidder_pattern,
    browser_pattern,
    build_application,
    populate_rubis,
)
from repro.core.distribution import distribute
from repro.core.patterns import PatternLevel
from repro.middleware.web import WebRequest, http_get
from repro.simnet.kernel import Environment
from repro.simnet.rng import Streams
from repro.simnet.topology import TestbedConfig, build_testbed
from tests.helpers import run_process


@pytest.fixture(scope="module")
def catalog_and_db():
    return populate_rubis(Streams(8))


def _system(level, db, catalog):
    env = Environment()
    testbed = build_testbed(env, TestbedConfig(db_colocated=True))
    system = distribute(
        env, testbed, build_application(level, catalog=catalog), PatternLevel(level), db
    )
    system.warm_replicas()
    return env, system


def _get(env, system, client, page, params, session="rb-test"):
    def proc():
        server = system.entry_server_for(client)
        request = WebRequest(
            page=page, params=dict(params), session_id=session, client_node=client
        )
        response = yield from http_get(env, server, request)
        return response

    return run_process(env, proc())


# ---------------------------------------------------------------------------
# Data generation
# ---------------------------------------------------------------------------


def test_data_sizes_match_paper(catalog_and_db):
    db, catalog = catalog_and_db
    # "we added 400 users from 20 regions, selling 400 items belonging to
    # 20 categories"
    assert len(catalog.user_ids) == 400
    assert len(catalog.region_ids) == 20
    assert len(catalog.item_ids) == 400
    assert len(catalog.category_ids) == 20


def test_items_have_valid_sellers_and_categories(catalog_and_db):
    db, catalog = catalog_and_db
    for item_id in catalog.item_ids[:50]:
        row = db.execute(
            "SELECT seller, category FROM items WHERE id = ?", (item_id,)
        ).first()
        assert row["seller"] in catalog.user_ids
        assert row["category"] in catalog.category_ids
        assert catalog.seller_of_item[item_id] == row["seller"]


def test_seeded_bids_are_consistent_with_item_summaries(catalog_and_db):
    db, catalog = catalog_and_db
    for item_id in catalog.item_ids[:40]:
        count = db.execute(
            "SELECT COUNT(*) AS n FROM bids WHERE item_id = ?", (item_id,)
        ).scalar()
        summary = db.execute(
            "SELECT nb_of_bids, max_bid FROM items WHERE id = ?", (item_id,)
        ).first()
        assert summary["nb_of_bids"] == count
        if count:
            top = db.execute(
                "SELECT MAX(bid) AS m FROM bids WHERE item_id = ?", (item_id,)
            ).scalar()
            assert summary["max_bid"] == pytest.approx(top)


def test_region_of_user_mapping(catalog_and_db):
    db, catalog = catalog_and_db
    for user_id in catalog.user_ids[:20]:
        row = db.execute("SELECT region_id FROM users WHERE id = ?", (user_id,)).first()
        assert catalog.region_of_user[user_id] == row["region_id"]


# ---------------------------------------------------------------------------
# Application descriptor
# ---------------------------------------------------------------------------


def test_application_has_all_pages():
    app = build_application(PatternLevel.REMOTE_FACADE)
    for page in set(BROWSER_PAGES) | set(BIDDER_PAGES):
        assert page in app.servlets, page


def test_only_item_and_user_are_read_mostly():
    app = build_application(PatternLevel.STATEFUL_CACHING)
    replicated = {
        name for name, d in app.components.items() if d.read_mostly is not None
    }
    # "Read-only BMP versions of Item and User beans were introduced" (§4.3)
    assert replicated == {"RubisItem", "User"}


def test_all_browser_queries_are_cached():
    app = build_application(PatternLevel.QUERY_CACHING)
    assert len(app.query_caches) == 6  # "caching of all queries" (§4.4)


def test_store_facades_never_move_to_edge():
    app = build_application(PatternLevel.ASYNC_UPDATES)
    assert app.components["SB_StoreBid"].edge_from_level is None
    assert app.components["SB_StoreComment"].edge_from_level is None
    assert app.components["SB_ViewItem"].edge_from_level == 3
    assert app.components["SB_PutBid"].edge_from_level == 4


# ---------------------------------------------------------------------------
# Page behaviour (level 4 system, warm)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def level4():
    db, catalog = populate_rubis(Streams(9))
    env, system = _system(PatternLevel.QUERY_CACHING, db, catalog)
    return env, system, catalog


def test_browse_pages_list_catalog(level4):
    env, system, catalog = level4
    response = _get(env, system, "client-main-0", "All Categories", {})
    assert response.data["categories"] == 20
    response = _get(env, system, "client-main-0", "All Regions", {})
    assert response.data["regions"] == 20


def test_region_page_shows_header(level4):
    env, system, catalog = level4
    response = _get(env, system, "client-main-0", "Region", {"region_id": 3})
    assert response.data["region"] == "Region-3"


def test_category_page_lists_items(level4):
    env, system, catalog = level4
    category = catalog.category_ids[0]
    response = _get(env, system, "client-main-0", "Category", {"category_id": category})
    assert response.data["items"] == len(catalog.items_by_category[category])


def test_category_region_page_filters_by_seller_region(level4):
    env, system, catalog = level4
    category = catalog.category_ids[0]
    region = catalog.region_ids[0]
    response = _get(
        env, system, "client-main-0", "Category & Region",
        {"category_id": category, "region_id": region},
    )
    expected = sum(
        1
        for item in catalog.items_by_category[category]
        if catalog.region_of_user[catalog.seller_of_item[item]] == region
    )
    assert response.data["items"] == expected


def test_item_page_shows_bid_summary(level4):
    env, system, catalog = level4
    item_id = catalog.item_ids[0]
    response = _get(env, system, "client-main-0", "Item", {"item_id": item_id})
    db = system.db_server.database
    expected = db.execute(
        "SELECT nb_of_bids FROM items WHERE id = ?", (item_id,)
    ).scalar()
    assert response.data["summary"]["nb_of_bids"] == expected


def test_bids_page_lists_history_with_nicknames(level4):
    env, system, catalog = level4
    db = system.db_server.database
    item_id = db.execute(
        "SELECT item_id FROM bids LIMIT 1"
    ).first()["item_id"]
    response = _get(env, system, "client-main-0", "Bids", {"item_id": item_id})
    expected = db.execute(
        "SELECT COUNT(*) AS n FROM bids WHERE item_id = ?", (item_id,)
    ).scalar()
    assert response.data["bids"] == expected


def test_user_info_lists_comments(level4):
    env, system, catalog = level4
    user_id = catalog.user_ids[0]
    response = _get(env, system, "client-main-0", "User Info", {"user_id": user_id})
    db = system.db_server.database
    expected = db.execute(
        "SELECT COUNT(*) AS n FROM comments WHERE to_user = ?", (user_id,)
    ).scalar()
    assert response.data["user"] == "user1"
    assert response.data["comments"] == expected


def test_put_bid_form_authenticates(level4):
    env, system, catalog = level4
    good = _get(
        env, system, "client-main-0", "Put Bid Form",
        {"user_id": 5, "password": "password5", "item_id": catalog.item_ids[0]},
    )
    assert good.status == 200
    assert good.data["authenticated"] is True
    bad = _get(
        env, system, "client-main-0", "Put Bid Form",
        {"user_id": 5, "password": "wrong", "item_id": catalog.item_ids[0]},
    )
    assert bad.status == 401


def test_store_bid_updates_item_and_history(level4):
    env, system, catalog = level4
    item_id = catalog.item_ids[5]
    db = system.db_server.database
    before = db.execute("SELECT nb_of_bids, max_bid FROM items WHERE id = ?", (item_id,)).first()
    response = _get(
        env, system, "client-main-0", "Store Bid",
        {"user_id": 6, "item_id": item_id, "increment": 7.5},
    )
    after = db.execute("SELECT nb_of_bids, max_bid FROM items WHERE id = ?", (item_id,)).first()
    assert after["nb_of_bids"] == before["nb_of_bids"] + 1
    assert after["max_bid"] > before["max_bid"]
    assert response.data["amount"] == pytest.approx(after["max_bid"])
    bid_row = db.execute(
        "SELECT user_id FROM bids WHERE id = ?", (response.data["bid_id"],)
    ).first()
    assert bid_row["user_id"] == 6


def test_store_comment_adjusts_rating(level4):
    env, system, catalog = level4
    db = system.db_server.database
    before = db.execute("SELECT rating FROM users WHERE id = 9").scalar()
    _get(
        env, system, "client-main-0", "Store Comment",
        {"user_id": 6, "to_user": 9, "item_id": catalog.item_ids[0],
         "rating": 1, "text": "great"},
    )
    after = db.execute("SELECT rating FROM users WHERE id = 9").scalar()
    assert after == before + 1


# ---------------------------------------------------------------------------
# Usage patterns
# ---------------------------------------------------------------------------


def test_browser_sessions_are_40_pages(catalog_and_db):
    _db, catalog = catalog_and_db
    visits = browser_pattern(catalog).session(Streams(14), 0)
    assert len(visits) == 40
    assert visits[0].page == "Main"


def test_browser_weights_emphasize_item_pages(catalog_and_db):
    _db, catalog = catalog_and_db
    pattern = browser_pattern(catalog)
    streams = Streams(15)
    counts = {}
    for session_index in range(40):
        for visit in pattern.session(streams, session_index):
            counts[visit.page] = counts.get(visit.page, 0) + 1
    total = sum(counts.values())
    assert counts["Item"] / total == pytest.approx(0.425, abs=0.06)


def test_bidder_script_matches_table5(catalog_and_db):
    _db, catalog = catalog_and_db
    visits = bidder_pattern(catalog).session(Streams(16), 0)
    assert [v.page for v in visits] == BIDDER_PAGES


def test_bidder_comments_the_items_seller(catalog_and_db):
    _db, catalog = catalog_and_db
    pattern = bidder_pattern(catalog)
    streams = Streams(17)
    for session_index in range(5):
        visits = pattern.session(streams, session_index)
        store_bid = next(v for v in visits if v.page == "Store Bid")
        store_comment = next(v for v in visits if v.page == "Store Comment")
        assert store_comment.params["to_user"] == catalog.seller_of_item[
            store_bid.params["item_id"]
        ]
        assert store_comment.params["user_id"] == store_bid.params["user_id"]
