"""Data generators are deterministic and parameterizable."""

import pytest

from repro.apps.petstore import populate_petstore
from repro.apps.rubis import populate_rubis
from repro.simnet.rng import Streams


def _table_dump(database):
    return {
        name: sorted(tuple(sorted(row.items())) for row in table.scan())
        for name, table in database.tables.items()
    }


def test_petstore_same_seed_same_data():
    db_a, cat_a = populate_petstore(Streams(42))
    db_b, cat_b = populate_petstore(Streams(42))
    assert _table_dump(db_a) == _table_dump(db_b)
    assert cat_a.item_ids == cat_b.item_ids


def test_petstore_different_seed_different_prices():
    db_a, _ = populate_petstore(Streams(1))
    db_b, _ = populate_petstore(Streams(2))
    a = db_a.execute("SELECT list_price FROM item WHERE id = 1").scalar()
    b = db_b.execute("SELECT list_price FROM item WHERE id = 1").scalar()
    assert a != b


def test_petstore_custom_sizes():
    db, catalog = populate_petstore(
        Streams(3),
        {"artificial_categories": 1, "products": 12, "items": 24, "accounts": 10},
    )
    assert len(catalog.category_ids) == 6  # 5 original + 1
    assert len(catalog.product_ids) == 12
    assert len(catalog.item_ids) == 24
    assert len(catalog.user_ids) == 10


def test_rubis_same_seed_same_data():
    db_a, cat_a = populate_rubis(Streams(42))
    db_b, cat_b = populate_rubis(Streams(42))
    assert _table_dump(db_a) == _table_dump(db_b)
    assert cat_a.seller_of_item == cat_b.seller_of_item


def test_rubis_custom_sizes():
    db, catalog = populate_rubis(
        Streams(4),
        {"regions": 4, "categories": 5, "users": 40, "items": 50,
         "bids_per_item_max": 2, "comments_per_user_max": 1},
    )
    assert len(catalog.region_ids) == 4
    assert len(catalog.category_ids) == 5
    assert len(catalog.user_ids) == 40
    assert len(catalog.item_ids) == 50
    assert len(db.tables["bids"]) <= 100


def test_rubis_bid_ids_continue_after_seeding():
    db, catalog = populate_rubis(Streams(5))
    assert catalog.next_bid_id == len(db.tables["bids"]) + 1
    assert catalog.next_comment_id == len(db.tables["comments"]) + 1
