"""Unit tests for RMI references, the web tier, and AppServer semantics."""

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.ejb import BeanError
from repro.middleware.naming import NamingError
from repro.middleware.rmi import AccessError, LocalRef, RemoteRef
from repro.middleware.web import WebRequest, http_get
from tests.helpers import run_process, tiny_system


def _ctx(env, server, page="Notes", session="s1"):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo(page, "test", session, "client-main-0"),
        costs=server.costs,
        trace=server.trace,
    )


# ---------------------------------------------------------------------------
# Reference resolution
# ---------------------------------------------------------------------------


def test_local_component_resolves_to_local_ref():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        ref = yield from main.lookup(ctx, "NotesFacade")
        return ref

    assert isinstance(run_process(env, proc()), LocalRef)


def test_missing_component_resolves_remotely_to_main():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        ref = yield from edge.lookup(ctx, "NotesFacade")
        return ref

    ref = run_process(env, proc())
    # Level 2: NotesFacade (edge_from_level=3) lives only on main.
    assert isinstance(ref, RemoteRef)
    assert ref.target_server is system.main


def test_read_lookup_prefers_readonly_replica():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        read_ref = yield from edge.lookup(ctx, "Note")
        write_ref = yield from edge.lookup(ctx, "Note", for_update=True)
        return read_ref, write_ref

    read_ref, write_ref = run_process(env, proc())
    assert isinstance(read_ref, LocalRef)  # the replica
    assert isinstance(write_ref, RemoteRef)  # the central RW container
    assert write_ref.target_server is system.main


def test_central_suffix_forces_main():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        ref = yield from edge.lookup(ctx, "NotesFacade@central")
        return ref

    ref = run_process(env, proc())
    assert isinstance(ref, RemoteRef)
    assert ref.target_server is system.main


def test_central_suffix_on_main_is_local():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        ref = yield from main.lookup(ctx, "NotesFacade@central")
        return ref

    assert isinstance(run_process(env, proc()), LocalRef)


def test_unknown_component_raises():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)

    def proc():
        yield from system.main.lookup(ctx, "Ghost")

    with pytest.raises(NamingError):
        run_process(env, proc())


def test_lookup_caches_resolved_refs():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        first = yield from edge.lookup(ctx, "NotesFacade@central")
        second = yield from edge.lookup(ctx, "NotesFacade@central")
        return first is second

    assert run_process(env, proc()) is True
    assert edge.home_cache.hits >= 1


# ---------------------------------------------------------------------------
# Remote invocation
# ---------------------------------------------------------------------------


def test_remote_call_costs_wan_round_trip():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        ref = yield from edge.lookup(ctx, "NotesFacade")
        yield from ref.call(ctx, "read_note", 1)  # cold: lookup + stub
        start = env.now
        yield from ref.call(ctx, "read_note", 1)  # warm
        return env.now - start

    warm = run_process(env, proc())
    assert 200.0 < warm < 450.0  # 1 RTT + DGC fraction


def test_local_interface_enforced_over_rmi():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        ref = yield from edge.lookup(ctx, "Note")  # entity, local-only
        yield from ref.entity(1).call(ctx, "get_text")

    with pytest.raises(AccessError):
        run_process(env, proc())


def test_rmi_calls_recorded_in_trace():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE, with_trace=True)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        ref = yield from edge.lookup(ctx, "NotesFacade")
        yield from ref.call(ctx, "read_note", 1)

    run_process(env, proc())
    rmi_calls = system.trace.wide_area_calls("rmi")
    assert len(rmi_calls) == 1
    assert rmi_calls[0].target == "NotesFacade"
    assert rmi_calls[0].page == "Notes"


# ---------------------------------------------------------------------------
# Web tier
# ---------------------------------------------------------------------------


def test_http_get_serves_mapped_page():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()

    def proc():
        request = WebRequest(
            page="Notes", params={"note_id": 1}, session_id="w1",
            client_node="client-main-0",
        )
        response = yield from http_get(env, system.main, request)
        return response

    response = run_process(env, proc())
    assert response.status == 200
    assert response.data == {"text": "note text 1"}


def test_http_unmapped_page_rejected():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)

    def proc():
        request = WebRequest(page="Nope", session_id="w1", client_node="client-main-0")
        yield from http_get(env, system.main, request)

    with pytest.raises(BeanError):
        run_process(env, proc())


def test_http_without_keep_alive_costs_two_round_trips():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()

    def proc():
        request = WebRequest(
            page="Notes", params={"note_id": 1}, session_id="w1",
            client_node="client-edge1-0",
        )
        # Edge client to the *edge* server is LAN; go to main instead.
        start = env.now
        response = yield from http_get(env, system.main, request)
        return env.now - start

    elapsed = run_process(env, proc())
    assert elapsed > 2 * 200.0  # handshake RTT + request RTT across the WAN


def test_http_session_store_per_server():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    store = system.main.web_sessions
    session = store.get("abc")
    session["cart"] = [1]
    assert store.get("abc")["cart"] == [1]
    assert len(store) == 1
    store.discard("abc")
    assert len(store) == 0


def test_entry_server_depends_on_level():
    env, system = tiny_system(PatternLevel.CENTRALIZED)
    assert system.entry_server_for("client-edge1-0") is system.main
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    assert system.entry_server_for("client-edge1-0").name == "edge1"


def test_utilization_report_structure():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    report = system.utilization_report()
    assert set(report) >= {"main", "edge1", "edge2"}
    assert all(0.0 <= value <= 1.0 for value in report.values())


def test_dgc_traffic_accompanies_rmi_calls():
    """"more than half of the data traffic incurred by RMI is due to
    distributed garbage collection" — the DGC bytes flow on the wire."""
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    edge = system.servers["edge1"]
    ctx = _ctx(env, edge)

    def proc():
        ref = yield from edge.lookup(ctx, "NotesFacade")
        for _ in range(5):
            yield from ref.call(ctx, "read_note", 1)

    run_process(env, proc())
    network = system.testbed.network
    rmi_bytes = 0
    dgc_bytes = 0
    for link, directions in network.traffic_report().items():
        if not link.startswith("wan-"):
            continue
    # Count per-kind on the edge1 WAN link counters directly.
    link = network.route("edge1", "main")[0]
    for direction in ("edge1->router", "router->edge1"):
        src, dst = direction.split("->")
        counter = link.counter(src, dst)
        rmi_bytes += counter.by_kind.get("rmi", [0, 0])[1]
        dgc_bytes += counter.by_kind.get("dgc", [0, 0])[1]
    assert dgc_bytes > 0
    # The DGC lease traffic approximates the payload traffic in volume
    # (~half of all RMI-related bytes), minus the one-time stub creation.
    assert dgc_bytes > 0.4 * rmi_bytes
