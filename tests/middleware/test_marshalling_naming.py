"""Unit tests for marshalling size estimation and JNDI naming."""

import pytest

from repro.middleware.marshalling import call_size, result_size, sizeof
from repro.middleware.naming import HomeCache, JndiRegistry, NamingError


# ---------------------------------------------------------------------------
# Marshalling
# ---------------------------------------------------------------------------


def test_sizeof_primitives():
    assert sizeof(None) == 1
    assert sizeof(True) == 2
    assert sizeof(42) == 9
    assert sizeof(3.14) == 9


def test_sizeof_strings_scale_with_length():
    assert sizeof("abc") == 10
    assert sizeof("abc" * 100) > sizeof("abc")


def test_sizeof_containers_sum_elements():
    assert sizeof([1, 2, 3]) == 24 + 3 * 9
    assert sizeof({"k": "v"}) == 24 + sizeof("k") + sizeof("v")
    assert sizeof((1,)) < sizeof((1, 2))


def test_sizeof_objects_use_dict_or_wire_size():
    class Plain:
        def __init__(self):
            self.a = 1

    class Sized:
        def wire_size(self):
            return 777

    assert sizeof(Plain()) > 32
    assert sizeof(Sized()) == 777


def test_sizeof_depth_bounded():
    nested = []
    cursor = nested
    for _ in range(50):
        inner = []
        cursor.append(inner)
        cursor = inner
    assert sizeof(nested) > 0  # terminates


def test_call_size_includes_method_and_args():
    small = call_size(100, 10, "m", ())
    larger = call_size(100, 10, "m", ("payload" * 10,))
    assert larger > small


def test_result_size():
    assert result_size(200, "x" * 100) == 200 + sizeof("x" * 100)


# ---------------------------------------------------------------------------
# Naming
# ---------------------------------------------------------------------------


def test_registry_bind_and_resolve():
    registry = JndiRegistry("main")
    registry.bind("Catalog", "container")
    assert registry.resolve("Catalog") == "container"
    assert registry.lookups == 1
    assert "Catalog" in registry


def test_registry_duplicate_bind_rejected():
    registry = JndiRegistry("main")
    registry.bind("Catalog", "a")
    with pytest.raises(NamingError):
        registry.bind("Catalog", "b")
    registry.rebind("Catalog", "b")  # rebind is allowed
    assert registry.resolve("Catalog") == "b"


def test_registry_unbind_and_names():
    registry = JndiRegistry("main")
    registry.bind("B", 1)
    registry.bind("A", 2)
    assert registry.names() == ["A", "B"]
    registry.unbind("A")
    assert registry.resolve("A") is None


def test_home_cache_hit_miss_counters():
    cache = HomeCache()
    assert cache.get("X") is None
    cache.put("X", "ref")
    assert cache.get("X") == "ref"
    assert cache.misses == 1
    assert cache.hits == 1


def test_home_cache_disabled_never_caches():
    cache = HomeCache(enabled=False)
    cache.put("X", "ref")
    assert cache.get("X") is None
    assert cache.hits == 0


def test_home_cache_invalidation():
    cache = HomeCache()
    cache.put("X", 1)
    cache.put("Y", 2)
    cache.invalidate("X")
    assert cache.get("X") is None
    assert cache.get("Y") == 2
    cache.invalidate()
    assert cache.get("Y") is None
