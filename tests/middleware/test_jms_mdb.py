"""Unit tests for JMS topics and message-driven bean delivery."""

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.ejb import BeanError, MessageDrivenBean
from repro.middleware.descriptors import ComponentDescriptor, ComponentKind, TxAttribute
from repro.middleware.jms import JmsProvider, Message
from repro.middleware.mdb import MessageDrivenContainer
from tests.helpers import run_process, tiny_system


class _CollectingMdb(MessageDrivenBean):
    received = None  # set per test

    def on_message(self, ctx, message):
        type(self).received.append((ctx.env.now, message.body))
        return None
        yield  # pragma: no cover


def _mdb_descriptor(topic="t"):
    return ComponentDescriptor(
        name="Collector",
        kind=ComponentKind.MESSAGE_DRIVEN,
        impl=_CollectingMdb,
        topic=topic,
        tx_attribute=TxAttribute.NOT_SUPPORTED,
        remote_interface=False,
    )


def _ctx(env, server):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("p", "test", "s", "client-main-0"),
        costs=server.costs,
    )


@pytest.fixture
def jms_setup():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    _CollectingMdb.received = []
    provider = system.main.jms
    return env, system, provider


def test_publish_is_accepted_without_subscribers(jms_setup):
    env, system, provider = jms_setup
    ctx = _ctx(env, system.main)

    def proc():
        message = yield from provider.publish(ctx, "empty-topic", {"x": 1})
        return message

    message = run_process(env, proc())
    assert isinstance(message, Message)
    assert provider.topic("empty-topic").published == 1
    assert provider.topic("empty-topic").delivered == 0


def test_delivery_to_local_subscriber(jms_setup):
    env, system, provider = jms_setup
    container = MessageDrivenContainer(system.main, _mdb_descriptor())
    provider.topic("t").subscribe(system.main, container)
    ctx = _ctx(env, system.main)

    def proc():
        yield from provider.publish(ctx, "t", "hello")

    run_process(env, proc())
    assert [body for _t, body in _CollectingMdb.received] == ["hello"]
    assert container.messages_handled == 1


def test_delivery_to_remote_subscriber_crosses_wan(jms_setup):
    env, system, provider = jms_setup
    edge = system.servers["edge1"]
    container = MessageDrivenContainer(edge, _mdb_descriptor())
    provider.topic("t").subscribe(edge, container)
    ctx = _ctx(env, system.main)

    def proc():
        yield from provider.publish(ctx, "t", "payload")
        return env.now

    publish_done = run_process(env, proc())
    # env.run drained the delivery: it arrived >= 100 ms after publish.
    arrival = _CollectingMdb.received[0][0]
    assert arrival >= 100.0
    assert publish_done < arrival  # publisher returned before delivery


def test_fanout_to_multiple_subscribers(jms_setup):
    env, system, provider = jms_setup
    for server_name in ("edge1", "edge2"):
        server = system.servers[server_name]
        container = MessageDrivenContainer(server, _mdb_descriptor())
        provider.topic("t").subscribe(server, container)
    ctx = _ctx(env, system.main)

    def proc():
        yield from provider.publish(ctx, "t", "broadcast")

    run_process(env, proc())
    assert len(_CollectingMdb.received) == 2
    assert provider.topic("t").delivered == 2


def test_mean_delivery_latency_tracked(jms_setup):
    env, system, provider = jms_setup
    edge = system.servers["edge1"]
    container = MessageDrivenContainer(edge, _mdb_descriptor())
    provider.topic("t").subscribe(edge, container)
    ctx = _ctx(env, system.main)

    def proc():
        yield from provider.publish(ctx, "t", "x")

    run_process(env, proc())
    assert provider.mean_delivery_latency() >= 100.0


def test_mdb_rejects_non_message_methods(jms_setup):
    env, system, provider = jms_setup
    container = MessageDrivenContainer(system.main, _mdb_descriptor())
    ctx = _ctx(env, system.main)

    def proc():
        yield from container.invoke(ctx, "something_else", ())

    with pytest.raises(BeanError):
        run_process(env, proc())


def test_mdb_container_rejects_wrong_kind(jms_setup):
    env, system, provider = jms_setup
    descriptor = ComponentDescriptor(
        name="NotMdb", kind=ComponentKind.STATELESS_SESSION, impl=_CollectingMdb
    )
    with pytest.raises(BeanError):
        MessageDrivenContainer(system.main, descriptor)


def test_message_wire_size_scales(jms_setup):
    small = Message(topic="t", body="x")
    large = Message(topic="t", body="x" * 10_000)
    assert large.wire_size() > small.wire_size()
