"""Unit tests for session and entity containers (via the tiny app)."""

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.ejb import BeanError
from tests.helpers import run_process, tiny_system


def _ctx(env, server, page="Notes", session="s1"):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo(
            page=page, client_group="test", session_id=session, client_node="client-main-0"
        ),
        costs=server.costs,
        trace=server.trace,
    )


@pytest.fixture
def system_level3():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    return env, system


# ---------------------------------------------------------------------------
# Stateless session container
# ---------------------------------------------------------------------------


def test_stateless_invocation_returns_value(system_level3):
    env, system = system_level3
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        text = yield from facade.call(ctx, "read_note", 1)
        return text

    assert run_process(env, proc()) == "note text 1"


def test_stateless_pool_reuses_instances(system_level3):
    env, system = system_level3
    main = system.main
    container = main.container("NotesFacade")
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        for note_id in (1, 2, 3):
            yield from facade.call(ctx, "read_note", note_id)

    run_process(env, proc())
    assert container.invocations == 3
    assert container.instances_created == 1


def test_stateless_missing_method_raises(system_level3):
    env, system = system_level3
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "no_such_method")

    with pytest.raises(BeanError):
        run_process(env, proc())


def test_transaction_rolls_back_on_bean_exception(system_level3):
    env, system = system_level3
    main = system.main
    ctx = _ctx(env, main)
    database = system.db_server.database

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        # create succeeds, then a second create with the same key fails —
        # the whole container-managed transaction must roll back.
        try:
            note_home = yield from main.lookup(ctx, "Note", for_update=True)

            def body(inner):
                yield from note_home.call(inner, "create", {"id": 100, "author": "x", "text": "a"})
                yield from note_home.call(inner, "create", {"id": 100, "author": "x", "text": "b"})

            yield from main.container("NotesFacade")._run_demarcated(ctx, body)
        except Exception:
            pass

    run_process(env, proc())
    count = database.execute("SELECT COUNT(*) AS n FROM notes WHERE id = 100").scalar()
    assert count == 0


# ---------------------------------------------------------------------------
# Entity container
# ---------------------------------------------------------------------------


def test_entity_read_loads_once_per_transaction(system_level3):
    env, system = system_level3
    main = system.main
    container = main.container("Note")
    ctx = _ctx(env, main)

    def proc():
        home = yield from main.lookup(ctx, "Note", for_update=True)

        def body(inner):
            yield from home.entity(5).call(inner, "get_text")
            yield from home.entity(5).call(inner, "get_text")  # cached in tx

        yield from main.container("NotesFacade")._run_demarcated(ctx, body)

    run_process(env, proc())
    assert container.loads == 1


def test_entity_write_stores_at_commit(system_level3):
    env, system = system_level3
    main = system.main
    container = main.container("Note")
    ctx = _ctx(env, main)
    database = system.db_server.database

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", 3, "updated")

    run_process(env, proc())
    assert container.stores == 1
    assert (
        database.execute("SELECT text FROM notes WHERE id = 3").scalar() == "updated"
    )


def test_entity_clean_instance_skips_store_when_optimized(system_level3):
    env, system = system_level3
    main = system.main
    container = main.container("Note")
    assert main.costs.store_on_read_only_tx is False
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "read_note", 4)

    run_process(env, proc())
    assert container.stores == 0
    assert container.skipped_stores == 1


def test_entity_finder_returns_primary_keys(system_level3):
    env, system = system_level3
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        home = yield from main.lookup(ctx, "Note", for_update=True)
        keys = yield from home.find(ctx, "find_by_author", "author1")
        return keys

    keys = run_process(env, proc())
    assert keys == [1, 4, 7, 10]


def test_entity_unknown_finder_rejected(system_level3):
    env, system = system_level3
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        home = yield from main.lookup(ctx, "Note", for_update=True)
        yield from home.find(ctx, "find_by_nothing", 1)

    with pytest.raises(BeanError):
        run_process(env, proc())


def test_entity_create_and_remove(system_level3):
    env, system = system_level3
    main = system.main
    ctx = _ctx(env, main)
    database = system.db_server.database

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "create_note", 200, "author9", "fresh")

    run_process(env, proc())
    assert database.execute("SELECT text FROM notes WHERE id = 200").scalar() == "fresh"

    def remove():
        home = yield from main.lookup(ctx, "Note", for_update=True)

        def body(inner):
            yield from home.call(inner, "remove", 200)

        yield from main.container("NotesFacade")._run_demarcated(ctx, body)

    run_process(env, remove())
    assert (
        database.execute("SELECT COUNT(*) AS n FROM notes WHERE id = 200").scalar() == 0
    )


def test_entity_missing_row_raises(system_level3):
    env, system = system_level3
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "read_note", 9999)

    with pytest.raises(BeanError):
        run_process(env, proc())


def test_cmp_finder_batching_avoids_n_plus_1(system_level3):
    """With finder_loads_rows, reading found beans does not reload them."""
    env, system = system_level3
    main = system.main
    container = main.container("Note")
    batching = main.costs.variant(finder_loads_rows=True)
    ctx = InvocationContext(
        env=env,
        server=main,
        request=RequestInfo("Notes", "test", "s1", "client-main-0"),
        costs=batching,
    )

    def proc():
        home = yield from main.lookup(ctx, "Note", for_update=True)

        def body(inner):
            keys = yield from home.find(inner, "find_by_author", "author1")
            for key in keys:
                yield from home.entity(key).call(inner, "get_text")

        yield from main.container("NotesFacade")._run_demarcated(ctx, body)

    run_process(env, proc())
    assert container.loads == 0  # all rows came from the finder batch


def test_bmp_n_plus_1_without_batching(system_level3):
    env, system = system_level3
    main = system.main
    container = main.container("Note")
    assert main.costs.finder_loads_rows is False
    ctx = _ctx(env, main)

    def proc():
        home = yield from main.lookup(ctx, "Note", for_update=True)

        def body(inner):
            keys = yield from home.find(inner, "find_by_author", "author1")
            for key in keys:
                yield from home.entity(key).call(inner, "get_text")

        yield from main.container("NotesFacade")._run_demarcated(ctx, body)

    run_process(env, proc())
    assert container.loads == 4  # one ejbLoad per found bean
