"""Unit tests for the bean base classes and method dispatch helper."""

import pytest

from repro.middleware.ejb import (
    BeanError,
    EntityBean,
    StatefulSessionBean,
    StatelessSessionBean,
    run_business_method,
)
from repro.simnet.kernel import Environment
from tests.helpers import run_process


class _Sample(StatelessSessionBean):
    def plain(self, ctx, value):
        return value * 2

    def generator(self, ctx, value):
        yield ctx  # any event-like; tests drive manually
        return value + 1

    def _private(self, ctx):
        return "secret"


def test_plain_methods_are_wrapped_into_generators(env):
    runner = run_business_method(_Sample(), "plain", None, (21,))

    def proc():
        result = yield from runner
        return result

    assert run_process(env, proc()) == 42


def test_generator_methods_compose(env):
    def proc():
        result = yield from run_business_method(
            _WaitingBean(), "wait_then", _RealCtx(env), (5,)
        )
        return result

    start = env.now
    assert run_process(env, proc()) == 6
    assert env.now == start + 3.0  # the bean's cpu() wait really happened


class _RealCtx:
    def __init__(self, env):
        self.env = env

    def cpu(self, ms):
        yield self.env.timeout(ms)


class _WaitingBean(StatelessSessionBean):
    def wait_then(self, ctx, value):
        yield from ctx.cpu(3.0)
        return value + 1


def test_missing_method_raises():
    with pytest.raises(BeanError, match="no business method"):
        run_business_method(_Sample(), "nope", None, ())


def test_private_methods_rejected():
    with pytest.raises(BeanError, match="not a public"):
        run_business_method(_Sample(), "_private", None, ())


# ---------------------------------------------------------------------------
# EntityBean state protocol
# ---------------------------------------------------------------------------


def _entity():
    bean = EntityBean()
    bean.primary_key = 7
    bean.state = {"a": 1, "b": "x"}
    return bean


def test_entity_get_set_field():
    bean = _entity()
    assert bean.get_field("a") == 1
    bean.set_field("a", 2)
    assert bean.get_field("a") == 2
    assert bean.is_dirty
    assert bean.dirty_fields == ("a",)


def test_entity_set_same_value_is_not_dirty():
    bean = _entity()
    bean.set_field("a", 1)
    assert not bean.is_dirty


def test_entity_unknown_field_rejected():
    bean = _entity()
    with pytest.raises(BeanError):
        bean.get_field("missing")
    with pytest.raises(BeanError):
        bean.set_field("missing", 0)


def test_entity_clear_dirty():
    bean = _entity()
    bean.set_field("b", "y")
    bean.clear_dirty()
    assert not bean.is_dirty
    assert bean.get_field("b") == "y"  # value change survives


def test_entity_get_state_returns_copy():
    bean = _entity()
    snapshot = bean.get_state(None)
    snapshot["a"] = 999
    assert bean.get_field("a") == 1


def test_stateful_bean_initial_state():
    bean = StatefulSessionBean()
    assert bean.state == {}
    assert bean.session_id is None
