"""Unit tests for read-only replicas, query caches, and update propagation."""

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo, UpdateEvent
from repro.middleware.ejb import BeanError
from repro.middleware.readonly import ReadOnlyViolation
from tests.helpers import run_process, tiny_system


def _ctx(env, server, session="s1"):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("Notes", "test", session, "client-main-0"),
        costs=server.costs,
        trace=server.trace,
    )


def _edge(system):
    return system.servers["edge1"]


# ---------------------------------------------------------------------------
# Read-only replica container
# ---------------------------------------------------------------------------


def test_replica_deployed_on_all_servers_at_level3():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    for server in system.servers.values():
        assert server.readonly_container("Note") is not None


def test_no_replicas_below_level3():
    env, system = tiny_system(PatternLevel.REMOTE_FACADE)
    for server in system.servers.values():
        assert server.readonly_container("Note") is None


def test_cold_miss_pulls_from_central_once():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    edge = _edge(system)
    replica = edge.readonly_container("Note")
    ctx = _ctx(env, edge)

    def read():
        facade = yield from edge.lookup(ctx, "NotesFacade")
        text = yield from facade.call(ctx, "read_note", 2)
        return text

    assert run_process(env, read()) == "note text 2"
    assert replica.misses == 1
    assert replica.refreshes == 1

    assert run_process(env, read()) == "note text 2"
    assert replica.hits == 1
    assert replica.misses == 1  # warm now


def test_warm_read_is_local_latency():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    edge = _edge(system)
    ctx = _ctx(env, edge)

    def read():
        start = env.now
        facade = yield from edge.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "read_note", 2)
        return env.now - start

    elapsed = run_process(env, read())
    assert elapsed < 10.0  # no WAN round trip


def test_replica_rejects_writes():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    edge = _edge(system)
    ctx = _ctx(env, edge)

    def bad():
        home = yield from edge.lookup(ctx, "Note")
        yield from home.entity(1).call(ctx, "bad_write")

    with pytest.raises(ReadOnlyViolation):
        run_process(env, bad())


def test_replica_rejects_custom_finders():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    edge = _edge(system)
    ctx = _ctx(env, edge)

    def bad():
        home = yield from edge.lookup(ctx, "Note")
        yield from home.find(ctx, "find_by_author", "author1")

    with pytest.raises(BeanError):
        run_process(env, bad())


def test_apply_update_installs_fresh_state():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    replica = _edge(system).readonly_container("Note")
    replica.apply_update(
        UpdateEvent("Note", "notes", 1, {"id": 1, "author": "a", "text": "pushed"})
    )
    assert replica.is_fresh(1)
    ctx = _ctx(env, _edge(system))

    def read():
        home = yield from _edge(system).lookup(ctx, "Note")
        text = yield from home.entity(1).call(ctx, "get_text")
        return text

    assert run_process(env, read()) == "pushed"


def test_apply_update_delete_evicts():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    replica = _edge(system).readonly_container("Note")
    replica.apply_update(UpdateEvent("Note", "notes", 1, {}, deleted=True))
    assert 1 not in replica.cached_keys()


def test_invalidate_marks_stale():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    replica = _edge(system).readonly_container("Note")
    assert replica.is_fresh(1)
    replica.invalidate(1)
    assert not replica.is_fresh(1)
    replica.invalidate()  # everything
    assert all(not replica.is_fresh(k) for k in replica.cached_keys())


# ---------------------------------------------------------------------------
# End-to-end consistency through the write path
# ---------------------------------------------------------------------------


def test_sync_push_keeps_replicas_fresh_zero_staleness():
    """§4.3: a read arriving after a committed write sees the new value."""
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    edge = _edge(system)
    main = system.main
    ctx_main = _ctx(env, main)
    ctx_edge = _ctx(env, edge)

    def write_then_read():
        facade = yield from main.lookup(ctx_main, "NotesFacade")
        yield from facade.call(ctx_main, "write_note", 1, "v2")
        # The write has committed; the edge replica must already be fresh.
        edge_facade = yield from edge.lookup(ctx_edge, "NotesFacade")
        text = yield from edge_facade.call(ctx_edge, "read_note", 1)
        return text

    assert run_process(env, write_then_read()) == "v2"
    assert main.update_propagator.sync_pushes == 1


def test_writer_blocks_on_sync_push():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    main = system.main
    ctx = _ctx(env, main)

    def write():
        start = env.now
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", 1, "v2")
        return env.now - start

    elapsed = run_process(env, write())
    assert elapsed > 200.0  # blocked on a WAN round trip to the edges


def test_async_updates_do_not_block_writer():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()
    main = system.main
    ctx = _ctx(env, main)

    def write():
        start = env.now
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", 1, "v2")
        return env.now - start

    elapsed = run_process(env, write())
    assert elapsed < 100.0
    assert main.update_propagator.async_publishes == 1
    assert main.update_propagator.sync_pushes == 0


def test_async_updates_eventually_reach_replicas():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()
    main = system.main
    edge = _edge(system)
    ctx = _ctx(env, main)

    def write():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", 1, "async-v2")

    run_process(env, write())  # env.run() drains the in-flight deliveries
    replica = edge.readonly_container("Note")
    assert replica.is_fresh(1)
    ctx_edge = _ctx(env, edge)

    def read():
        home = yield from edge.lookup(ctx_edge, "Note")
        text = yield from home.entity(1).call(ctx_edge, "get_text")
        return text

    assert run_process(env, read()) == "async-v2"


# ---------------------------------------------------------------------------
# Query caches
# ---------------------------------------------------------------------------


def test_query_cache_active_only_from_level4():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    assert _edge(system).query_cache is None
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    assert _edge(system).query_cache is not None
    assert _edge(system).query_cache.handles("tiny.notes_of")


def test_query_cache_miss_pulls_then_hits():
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    edge = _edge(system)
    cache = edge.query_cache
    ctx = _ctx(env, edge)

    def query():
        facade = yield from edge.lookup(ctx, "NotesFacade")
        rows = yield from facade.call(ctx, "notes_of", "author1")
        return rows

    rows = run_process(env, query())
    assert {row["id"] for row in rows} == {1, 4, 7, 10}
    stats = cache.stats["tiny.notes_of"]
    assert stats.misses == 1

    run_process(env, query())
    assert stats.hits == 1


def test_query_cache_push_refresh_after_write():
    """§4.4 push-based query update: readers are never penalized."""
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    system.warm_replicas()
    edge = _edge(system)
    main = system.main
    ctx_main = _ctx(env, main)
    ctx_edge = _ctx(env, edge)

    def warm():
        facade = yield from edge.lookup(ctx_edge, "NotesFacade")
        yield from facade.call(ctx_edge, "notes_of", "author1")

    run_process(env, warm())

    def write():
        facade = yield from main.lookup(ctx_main, "NotesFacade")
        yield from facade.call(ctx_main, "create_note", 300, "author1", "brand new")

    run_process(env, write())
    # The cache entry was refreshed by push, not invalidated.
    assert edge.query_cache.is_fresh("tiny.notes_of", ("author1",))

    def query():
        start = env.now
        facade = yield from edge.lookup(ctx_edge, "NotesFacade")
        rows = yield from facade.call(ctx_edge, "notes_of", "author1")
        return rows, env.now - start

    rows, elapsed = run_process(env, query())
    assert 300 in {row["id"] for row in rows}
    assert elapsed < 10.0  # served locally


def test_query_cache_unknown_query_rejected():
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    with pytest.raises(KeyError):
        run_process(env, _edge(system).query_cache.get(_ctx(env, _edge(system)), "nope", ()))
