"""The unified consistency chain and level-6 transactional method caching.

Covers the interceptor chain shape, the cached call path (hits, misses,
learned footprints, write rejection), commit-driven invalidation over
the shared bus in both strict and bounded modes, and the failure guards
(sequence gaps, crash drops, LRU eviction bookkeeping).
"""

from dataclasses import replace

from repro.core.distribution import distribute
from repro.core.patterns import PatternLevel
from repro.core.policy import level_policy
from repro.core.rules import DesignRuleChecker
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.descriptors import UpdateMode
from repro.middleware.updates import UpdatePayload
from repro.rdbms.lru import LruCache
from repro.simnet.kernel import Environment
from repro.simnet.topology import TestbedConfig, build_testbed
from tests.helpers import run_process, tiny_application, tiny_database, tiny_system


def _ctx(env, server, session="mc"):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("Notes", "test", session, "client-main-0"),
        costs=server.costs,
    )


def _call(env, system, server_name, method, *args):
    server = system.servers[server_name]
    ctx = _ctx(env, server)

    def proc():
        facade = yield from server.lookup(ctx, "NotesFacade")
        result = yield from facade.call(ctx, method, *args)
        return result

    return proc()


def _level6_system():
    """The canned level-6 system (cumulative over 5: bounded/ASYNC)."""
    env, system = tiny_system(PatternLevel.METHOD_CACHING)
    system.warm_replicas()
    return env, system


def _strict_policy(app):
    """The canned level-6 policy flipped to synchronous (strict) pushes.

    Dropping the ``UpdateSubscriber`` placement mirrors automation: the
    MDB only exists under asynchronous propagation.
    """
    from repro.middleware.updates import UPDATE_SUBSCRIBER

    policy = level_policy(PatternLevel.METHOD_CACHING, app)
    components = {
        name: cp
        for name, cp in policy.components.items()
        if name != UPDATE_SUBSCRIBER
    }
    return replace(policy, update_mode=UpdateMode.SYNC, components=components)


def _strict_system():
    """Level-6 placements with synchronous (strict) update propagation."""
    env = Environment()
    testbed = build_testbed(env, TestbedConfig())
    app = tiny_application()
    system = distribute(env, testbed, app, _strict_policy(app), tiny_database())
    system.warm_replicas()
    return env, system


# ---------------------------------------------------------------------------
# Deployment shape
# ---------------------------------------------------------------------------


def test_level6_deploys_method_caches_on_edges_only():
    env, system = _level6_system()
    assert system.main.method_cache is None
    for name in ("edge1", "edge2"):
        cache = system.servers[name].method_cache
        assert cache is not None
        assert cache.intercepts("NotesFacade", "read_note")
        assert not cache.intercepts("NotesFacade", "write_note")
    assert system.plan.method_caches == {"NotesFacade": ["edge1", "edge2"]}
    assert system.automation.method_caches_active == ["NotesFacade"]


def test_level6_propagator_tracks_table_writes():
    env, system = _level6_system()
    propagator = system.main.update_propagator
    assert propagator is not None
    assert propagator.tracks_table_writes
    assert propagator.table_update_mode == UpdateMode.ASYNC


def test_levels_below_six_have_no_method_cache():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    for server in system.servers.values():
        assert server.method_cache is None
    assert system.plan.method_caches == {}
    assert not system.main.update_propagator.tracks_table_writes


def test_consistency_chain_members():
    env, system = _level6_system()
    names = [i.name for i in system.servers["edge1"].consistency.interceptors()]
    assert names == ["replicas", "query_cache", "method_cache"]
    # Main has the standing members but no method cache registered.
    names = [i.name for i in system.main.consistency.interceptors()]
    assert names == ["replicas", "query_cache"]


def test_canned_level6_mode_is_bounded_strict_under_sync():
    env, system = _level6_system()
    assert not system.servers["edge1"].method_cache.strict
    env, system = _strict_system()
    assert system.servers["edge1"].method_cache.strict


def test_plan_describe_lists_method_caches():
    env, system = _level6_system()
    assert "method cache for NotesFacade on: edge1, edge2" in system.plan.describe()


# ---------------------------------------------------------------------------
# The cached call path
# ---------------------------------------------------------------------------


def test_second_identical_call_is_a_hit():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def scenario():
        first = yield from _call(env, system, "edge1", "read_note", 1)
        second = yield from _call(env, system, "edge1", "read_note", 1)
        return first, second

    first, second = run_process(env, scenario())
    assert first == second == "note text 1"
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1
    assert cache.entry_count() == 1


def test_distinct_args_are_distinct_entries():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def scenario():
        yield from _call(env, system, "edge1", "read_note", 1)
        yield from _call(env, system, "edge1", "read_note", 2)

    run_process(env, scenario())
    assert cache.stats.misses == 2
    assert cache.entry_count() == 2


def test_footprints_are_learned_from_the_jdbc_layer():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def scenario():
        yield from _call(env, system, "edge1", "read_note", 1)
        yield from _call(env, system, "edge1", "notes_of", "author1")

    run_process(env, scenario())
    # read_note goes through the Note replica (mapped table), notes_of
    # through the query cache (tables parsed from its SQL) — both funnel
    # into the same learned footprint, never hand-declared.
    assert cache.footprint_of("NotesFacade", "read_note") == ("notes",)
    assert cache.footprint_of("NotesFacade", "notes_of") == ("notes",)


def test_cached_result_is_isolated_from_caller_mutation():
    env, system = _strict_system()

    def scenario():
        rows = yield from _call(env, system, "edge1", "notes_of", "author1")
        rows[0]["text"] = "mutated by caller"
        rows.append({"bogus": True})
        again = yield from _call(env, system, "edge1", "notes_of", "author1")
        return again

    again = run_process(env, scenario())
    assert all(row.get("text") != "mutated by caller" for row in again)
    assert all("bogus" not in row for row in again)


def test_writing_method_is_never_cached_and_recorded_as_r7():
    env, system = _strict_system()
    # Misdeclare the writing method as cacheable (on main, where writes
    # are legal); the cache must catch it at runtime.
    cache = system.main.enable_method_cache(mode=UpdateMode.SYNC)
    cache.register("NotesFacade", ["write_note"])

    def scenario():
        yield from _call(env, system, "main", "write_note", 1, "v1")
        yield from _call(env, system, "main", "write_note", 1, "v2")
        text = yield from _call(env, system, "main", "read_note", 1)
        return text

    assert run_process(env, scenario()) == "v2"
    assert cache.stats.rejected_stores == 1  # second call bypassed the cache
    assert cache.write_violations[("NotesFacade", "write_note")] == ("notes",)
    report = DesignRuleChecker(system).check()
    violations = report.violations_of("R7")
    assert violations and "write_note" in violations[0].subject


def test_unhashable_args_fall_through_to_direct_invocation():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache
    server = system.servers["edge1"]

    class _StubDescriptor:
        name = "NotesFacade"

    class _StubContainer:
        descriptor = _StubDescriptor()
        direct_calls = 0

        def _invoke_direct(self, ctx, method, args):
            self.direct_calls += 1
            yield from ctx.cpu(0.01)
            return "direct"

    stub = _StubContainer()

    def proc():
        ctx = _ctx(env, server)
        result = yield from cache.invoke_through(
            ctx, stub, "notes_of", (["unhashable"],)
        )
        return result

    # A list argument is unhashable: the call still works, nothing cached.
    assert run_process(env, proc()) == "direct"
    assert stub.direct_calls == 1
    assert cache.entry_count() == 0
    assert cache.stats.stores == 0


# ---------------------------------------------------------------------------
# Invalidation over the shared bus
# ---------------------------------------------------------------------------


def test_strict_commit_invalidates_before_returning():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def scenario():
        before = yield from _call(env, system, "edge1", "read_note", 1)
        yield from _call(env, system, "main", "write_note", 1, "rewritten")
        after = yield from _call(env, system, "edge1", "read_note", 1)
        return before, after

    before, after = run_process(env, scenario())
    assert before == "note text 1"
    assert after == "rewritten"
    assert cache.stats.invalidations >= 1
    assert cache.stats.stale_serves == 0


def test_bounded_commit_invalidates_after_jms_delivery():
    env, system = _level6_system()
    cache = system.servers["edge1"].method_cache

    def scenario():
        yield from _call(env, system, "edge1", "read_note", 1)
        yield from _call(env, system, "main", "write_note", 1, "async-rewrite")

    run_process(env, scenario())  # run() drains JMS deliveries too
    assert cache.stats.invalidations >= 1
    assert cache.stats.staleness_events >= 1
    assert cache.stats.staleness_total_ms > 0.0

    def read_after():
        text = yield from _call(env, system, "edge1", "read_note", 1)
        return text

    assert run_process(env, read_after()) == "async-rewrite"


def test_bounded_hit_inside_the_window_counts_as_stale_serve():
    env, system = _level6_system()
    cache = system.servers["edge1"].method_cache

    def scenario():
        yield from _call(env, system, "edge1", "read_note", 1)
        yield from _call(env, system, "main", "write_note", 1, "stale-window")
        # Read again before the JMS invalidation lands at edge1: a
        # bounded-mode hit inside the propagation window.
        stale = yield from _call(env, system, "edge1", "read_note", 1)
        return stale

    assert run_process(env, scenario()) == "note text 1"
    assert cache.stats.stale_serves == 1


def test_sequence_gap_drops_the_whole_cache():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def seed():
        yield from _call(env, system, "edge1", "read_note", 1)

    run_process(env, seed())
    assert cache.entry_count() == 1
    assert cache._last_seq == 0
    gap = UpdatePayload(
        events=[], invalidations=[], query_refreshes=[],
        tables=["unrelated"], sent_at=env.now, seq=3,
    )
    cache.apply(None, gap)
    assert cache.stats.seq_gaps == 1
    assert cache.stats.drops == 1
    assert cache.entry_count() == 0
    assert cache._last_seq == 3


def test_strict_lease_expiry_refuses_hits():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def scenario():
        yield from _call(env, system, "edge1", "read_note", 1)
        # No payloads arrive while simulated time sails past the lease.
        yield cache.lease_ms + 1.0
        yield from _call(env, system, "edge1", "read_note", 1)

    run_process(env, scenario())
    assert cache.stats.hits == 0
    assert cache.stats.misses == 2


def test_crash_drops_method_cache_state():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def seed():
        yield from _call(env, system, "edge1", "read_note", 1)

    run_process(env, seed())
    assert cache.entry_count() == 1
    system.servers["edge1"].crash()
    assert cache.entry_count() == 0
    assert cache.stats.drops == 1


def test_eviction_updates_secondary_indexes():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache
    cache._entries = LruCache(1)  # shrink to force eviction

    def scenario():
        yield from _call(env, system, "edge1", "read_note", 1)
        yield from _call(env, system, "edge1", "read_note", 2)

    run_process(env, scenario())
    assert cache.stats.evictions == 1
    assert cache.entry_count() == 1
    # The evicted key must be gone from the by-table index too.
    keys = cache._by_table.get("notes", set())
    assert keys == {("NotesFacade", "read_note", (2,))}


def test_mark_missed_marks_overlapping_entries_compromised():
    env, system = _strict_system()
    cache = system.servers["edge1"].method_cache

    def seed():
        yield from _call(env, system, "edge1", "read_note", 1)

    run_process(env, seed())
    lost = UpdatePayload(
        events=[], invalidations=[], query_refreshes=[], tables=["notes"]
    )
    cache.mark_missed(lost, env.now)
    assert cache.stats.missed_payloads == 1
    assert ("NotesFacade", "read_note", (1,)) in cache._compromised


def test_stats_as_dict_has_all_counters():
    env, system = _strict_system()
    snapshot = system.servers["edge1"].method_cache.stats.as_dict()
    assert set(snapshot) == {
        "hits", "misses", "stores", "evictions", "invalidations",
        "stale_serves", "seq_gaps", "drops", "rejected_stores",
        "missed_payloads", "staleness_events", "staleness_total_ms",
        "staleness_max_ms",
    }
