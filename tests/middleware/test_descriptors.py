"""Unit tests for deployment descriptors."""

import pytest

from repro.middleware.descriptors import (
    ApplicationDescriptor,
    ComponentDescriptor,
    ComponentKind,
    DescriptorError,
    QueryCacheDescriptor,
    ReadMostlyDescriptor,
    TxAttribute,
    UpdateMode,
)
from repro.middleware.ejb import EntityBean, Servlet, StatelessSessionBean
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.types import INTEGER


class _Bean(StatelessSessionBean):
    pass


class _Entity(EntityBean):
    pass


class _Servlet(Servlet):
    pass


def _entity_descriptor(**overrides):
    defaults = dict(
        name="E",
        kind=ComponentKind.ENTITY,
        impl=_Entity,
        table="t",
        remote_interface=False,
    )
    defaults.update(overrides)
    return ComponentDescriptor(**defaults)


def test_entity_requires_table():
    with pytest.raises(DescriptorError):
        ComponentDescriptor(name="E", kind=ComponentKind.ENTITY, impl=_Entity)


def test_non_entity_rejects_table():
    with pytest.raises(DescriptorError):
        ComponentDescriptor(
            name="S", kind=ComponentKind.STATELESS_SESSION, impl=_Bean, table="t"
        )


def test_mdb_requires_topic():
    with pytest.raises(DescriptorError):
        ComponentDescriptor(name="M", kind=ComponentKind.MESSAGE_DRIVEN, impl=_Bean)


def test_read_mostly_only_on_entities():
    with pytest.raises(DescriptorError):
        ComponentDescriptor(
            name="S",
            kind=ComponentKind.STATELESS_SESSION,
            impl=_Bean,
            read_mostly=ReadMostlyDescriptor(updater="S"),
        )


def test_component_needs_some_interface():
    with pytest.raises(DescriptorError):
        ComponentDescriptor(
            name="S",
            kind=ComponentKind.STATELESS_SESSION,
            impl=_Bean,
            remote_interface=False,
            local_interface=False,
        )


def test_is_facade_semantics():
    facade = ComponentDescriptor(
        name="F", kind=ComponentKind.STATELESS_SESSION, impl=_Bean
    )
    assert facade.is_facade
    entity = _entity_descriptor()
    assert not entity.is_facade
    assert entity.is_entity


def test_application_duplicate_component_rejected():
    app = ApplicationDescriptor(name="a")
    app.add(ComponentDescriptor("F", ComponentKind.STATELESS_SESSION, _Bean))
    with pytest.raises(DescriptorError):
        app.add(ComponentDescriptor("F", ComponentKind.STATELESS_SESSION, _Bean))


def test_application_page_mapping_requires_servlet():
    app = ApplicationDescriptor(name="a")
    app.add(ComponentDescriptor("F", ComponentKind.STATELESS_SESSION, _Bean))
    with pytest.raises(DescriptorError):
        app.map_page("Home", "F")
    with pytest.raises(DescriptorError):
        app.map_page("Home", "missing")


def test_application_validate_checks_entity_tables():
    app = ApplicationDescriptor(name="a")
    app.add(_entity_descriptor())
    with pytest.raises(DescriptorError):
        app.validate()  # schema "t" never registered
    app.add_schema(TableSchema("t", [Column("id", INTEGER)], primary_key="id"))
    app.validate()


def test_application_validate_checks_updater_reference():
    app = ApplicationDescriptor(name="a")
    app.add_schema(TableSchema("t", [Column("id", INTEGER)], primary_key="id"))
    app.add(
        _entity_descriptor(read_mostly=ReadMostlyDescriptor(updater="Ghost"))
    )
    with pytest.raises(DescriptorError):
        app.validate()


def test_query_registration_and_cache():
    app = ApplicationDescriptor(name="a")
    app.add_query("q1", "SELECT * FROM t")
    with pytest.raises(DescriptorError):
        app.add_query("q1", "SELECT * FROM t")
    app.add_query_cache(QueryCacheDescriptor(query_id="q2", sql="SELECT * FROM t"))
    assert "q2" in app.queries  # cache registration also registers the query
    with pytest.raises(DescriptorError):
        app.add_query_cache(QueryCacheDescriptor(query_id="q2", sql="SELECT * FROM t"))


def test_entities_listing():
    app = ApplicationDescriptor(name="a")
    app.add_schema(TableSchema("t", [Column("id", INTEGER)], primary_key="id"))
    app.add(_entity_descriptor())
    app.add(ComponentDescriptor("F", ComponentKind.STATELESS_SESSION, _Bean))
    assert [d.name for d in app.entities()] == ["E"]


def test_unknown_component_lookup():
    app = ApplicationDescriptor(name="a")
    with pytest.raises(DescriptorError):
        app.component("nope")


def test_default_update_mode_is_sync():
    descriptor = ReadMostlyDescriptor(updater="E")
    assert descriptor.update_mode == UpdateMode.SYNC
