"""Tests for the §4.3/§5 propagation optimizations: delta pushes and
relaxed-consistency (staleness-bound) batching."""

from dataclasses import replace

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo, UpdateEvent
from repro.middleware.marshalling import sizeof
from tests.helpers import run_process, tiny_system


def _ctx(env, server):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("Notes", "test", "s", "client-main-0"),
        costs=server.costs,
    )


def _write(env, system, note_id, text):
    main = system.main
    ctx = _ctx(env, main)

    def proc():
        facade = yield from main.lookup(ctx, "NotesFacade")
        yield from facade.call(ctx, "write_note", note_id, text)

    return proc()


def _set_staleness_bound(system, bound_ms):
    descriptor = system.application.components["Note"]
    descriptor.read_mostly = replace(
        descriptor.read_mostly, staleness_bound_ms=bound_ms
    )


# ---------------------------------------------------------------------------
# Delta push
# ---------------------------------------------------------------------------


def _delta_system():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    for server in system.servers.values():
        server.costs = server.costs.variant(push_delta_only=True)
    system.warm_replicas()
    return env, system


def test_delta_push_preserves_zero_staleness():
    env, system = _delta_system()

    def scenario():
        yield from _write(env, system, 1, "delta-v1")
        edge = system.servers["edge1"]
        ctx = _ctx(env, edge)
        facade = yield from edge.lookup(ctx, "NotesFacade")
        text = yield from facade.call(ctx, "read_note", 1)
        return text

    assert run_process(env, scenario()) == "delta-v1"


def test_delta_push_keeps_unchanged_fields():
    env, system = _delta_system()
    run_process(env, _write(env, system, 1, "delta-v2"))
    replica = system.servers["edge1"].readonly_container("Note")
    cached = replica._cache[1]
    assert cached["text"] == "delta-v2"
    assert cached["author"] == "author1"  # untouched field survived the merge


def test_delta_event_is_smaller_than_full_state():
    full = UpdateEvent(
        "Note", "notes", 1,
        {"id": 1, "author": "author1", "text": "x" * 300},
        changed_fields=("text",),
    )
    delta = UpdateEvent(
        "Note", "notes", 1, {"text": "y"}, changed_fields=("text",), partial=True
    )
    assert sizeof(delta) < sizeof(full)


def test_delta_to_cold_replica_falls_back_to_invalidation():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    replica = system.servers["edge1"].readonly_container("Note")
    assert 1 not in replica.cached_keys()  # cold: never saw the full row
    replica.apply_update(
        UpdateEvent("Note", "notes", 1, {"text": "orphan delta"}, partial=True)
    )
    assert not replica.is_fresh(1)  # must pull the full row on next use
    ctx = _ctx(env, system.servers["edge1"])

    def read():
        home = yield from system.servers["edge1"].lookup(ctx, "Note")
        text = yield from home.entity(1).call(ctx, "get_text")
        return text

    assert run_process(env, read()) == "note text 1"  # pulled authoritative state


# ---------------------------------------------------------------------------
# Staleness-bound batching (TACT-style relaxed consistency, §5)
# ---------------------------------------------------------------------------


def test_bounded_updates_coalesce_into_one_publish():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    _set_staleness_bound(system, 1_000.0)
    system.warm_replicas()
    propagator = system.main.update_propagator

    def burst():
        for version in range(4):
            yield from _write(env, system, 1, f"burst-{version}")

    run_process(env, burst())
    # Four writes within one window: three coalesced, one flush carries
    # the entity state.  (Query-cache refreshes are not bounded and still
    # publish per write: 4 immediate + 1 flush.)
    assert propagator.coalesced_events == 3
    assert propagator.bounded_flushes == 1
    assert propagator.async_publishes == 5


def test_bounded_updates_converge_to_latest_value():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    _set_staleness_bound(system, 500.0)
    system.warm_replicas()

    def burst():
        for version in range(3):
            yield from _write(env, system, 2, f"b-{version}")

    run_process(env, burst())  # drains the flush and its deliveries
    for server_name in ("edge1", "edge2"):
        replica = system.servers[server_name].readonly_container("Note")
        assert replica._cache[2]["text"] == "b-2"


def test_staleness_never_exceeds_bound_plus_propagation():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    bound = 800.0
    _set_staleness_bound(system, bound)
    system.warm_replicas()
    converged_at = {}

    def writer():
        yield from _write(env, system, 3, "bounded")
        committed_at = env.now

        def watcher():
            replica = system.servers["edge1"].readonly_container("Note")
            while replica._cache[3]["text"] != "bounded":
                yield env.timeout(5.0)
            converged_at["delay"] = env.now - committed_at

        env.process(watcher())

    env.process(writer())
    env.run()
    # Bound + one-way WAN (~103 ms) + processing slack.
    assert converged_at["delay"] <= bound + 150.0


def test_unbounded_components_still_publish_immediately():
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    system.warm_replicas()  # staleness_bound_ms is None by default
    propagator = system.main.update_propagator
    run_process(env, _write(env, system, 4, "now"))
    assert propagator.async_publishes == 1
    assert propagator.bounded_flushes == 0


def test_tighter_bound_pulls_flush_forward():
    """A later event with a smaller staleness bound must not wait for an
    earlier event's longer flush window."""
    env, system = tiny_system(PatternLevel.ASYNC_UPDATES)
    _set_staleness_bound(system, 2_000.0)
    system.warm_replicas()
    converged_at = {}

    def scenario():
        yield from _write(env, system, 1, "slow-bound")
        # Tighten the bound mid-window, then write again.
        _set_staleness_bound(system, 100.0)
        system.main.home_cache.invalidate()
        yield env.timeout(50.0)
        committed = env.now
        yield from _write(env, system, 2, "fast-bound")

        def watcher():
            replica = system.servers["edge1"].readonly_container("Note")
            while replica._cache[2]["text"] != "fast-bound":
                yield env.timeout(5.0)
            converged_at["delay"] = env.now - committed

        env.process(watcher())

    env.process(scenario())
    env.run()
    # Bound 100 + one-way WAN (~103 ms) + slack — NOT the 2 s window.
    assert converged_at["delay"] <= 100.0 + 180.0
