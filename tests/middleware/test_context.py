"""Unit tests for invocation and transaction contexts."""

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import (
    InvocationContext,
    RequestInfo,
    TransactionContext,
    TransactionError,
    UpdateEvent,
)
from tests.helpers import run_process, tiny_system


def _ctx(env, server):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("p", "g", "s", "client-main-0"),
        costs=server.costs,
    )


def test_request_ids_are_unique():
    a = RequestInfo("p", "g", "s", "n")
    b = RequestInfo("p", "g", "s", "n")
    assert a.id != b.id


def test_at_server_drops_transaction_and_switches_costs():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    main, edge = system.main, system.servers["edge1"]
    ctx = _ctx(env, main)
    tx = TransactionContext(ctx)
    inner = ctx.in_transaction(tx)
    assert inner.transaction is tx
    remote = inner.at_server(edge)
    assert remote.transaction is None  # no WAN 2PC
    assert remote.server is edge
    assert remote.depth == inner.depth + 1
    assert remote.request is inner.request  # same page request identity


def test_commit_twice_rejected():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)
    tx = TransactionContext(ctx)

    def proc():
        yield from tx.commit(ctx.in_transaction(tx))
        yield from tx.commit(ctx.in_transaction(tx))

    with pytest.raises(TransactionError):
        run_process(env, proc())


def test_rollback_after_commit_rejected():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)
    tx = TransactionContext(ctx)

    def proc():
        yield from tx.commit(ctx.in_transaction(tx))
        yield from tx.rollback(ctx.in_transaction(tx))

    with pytest.raises(TransactionError):
        run_process(env, proc())


def test_read_only_hint_rejects_writes():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)
    tx = TransactionContext(ctx, read_only_hint=True)
    with pytest.raises(TransactionError):
        tx.mark_write()


def test_rollback_discards_update_events():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)
    tx = TransactionContext(ctx)
    tx.add_update_event(UpdateEvent("Note", "notes", 1, {"text": "x"}))
    tx.add_query_invalidation("q", (1,))

    def proc():
        yield from tx.rollback(ctx.in_transaction(tx))

    run_process(env, proc())
    assert tx.update_events == []
    assert tx.query_invalidations == []
    assert tx.state == "aborted"


def test_enlist_entity_deduplicates_by_identity():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)
    tx = TransactionContext(ctx)

    class FakeInstance:
        primary_key = 7

    container = object()
    instance = FakeInstance()
    tx.enlist_entity(container, instance)
    tx.enlist_entity(container, instance)
    assert len(tx._enlisted_entities) == 1


def test_cpu_charges_current_server():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)

    def proc():
        start = env.now
        yield from ctx.cpu(12.5)
        return env.now - start

    assert run_process(env, proc()) == pytest.approx(12.5)


def test_record_call_without_trace_is_noop():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    ctx = _ctx(env, system.main)
    assert ctx.trace is None
    ctx.record_call("rmi", "edge1", "X", "m")  # must not raise
