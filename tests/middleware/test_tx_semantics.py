"""Tests for container-managed transaction attributes and stateful beans."""

import pytest

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo, TransactionContext
from repro.middleware.descriptors import (
    ComponentDescriptor,
    ComponentKind,
    TxAttribute,
)
from repro.middleware.ejb import BeanError, StatefulSessionBean, StatelessSessionBean
from repro.middleware.session import StatefulSessionContainer, StatelessSessionContainer
from tests.helpers import run_process, tiny_system


class _TxProbeBean(StatelessSessionBean):
    """Reports the transaction context it observes."""

    def observe(self, ctx):
        tx = ctx.transaction
        return None if tx is None else tx.id
        yield  # pragma: no cover


class _CounterBean(StatefulSessionBean):
    def ejb_create(self, ctx, *args):
        self.state["count"] = 0

    def bump(self, ctx):
        self.state["count"] += 1
        return self.state["count"]


def _container(system, attribute, kind=ComponentKind.STATELESS_SESSION, impl=_TxProbeBean):
    descriptor = ComponentDescriptor(
        name=f"Probe{attribute.value}",
        kind=kind,
        impl=impl,
        tx_attribute=attribute,
    )
    if kind == ComponentKind.STATELESS_SESSION:
        return StatelessSessionContainer(system.main, descriptor)
    return StatefulSessionContainer(system.main, descriptor)


def _ctx(env, server, session="tx", transaction=None):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("p", "g", session, "client-main-0"),
        costs=server.costs,
        transaction=transaction,
    )


def test_required_starts_transaction_when_absent():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(system, TxAttribute.REQUIRED)
    ctx = _ctx(env, system.main)

    def proc():
        tx_id = yield from container.invoke(ctx, "observe", ())
        return tx_id

    assert run_process(env, proc()) is not None
    assert container.transactions_started == 1


def test_required_joins_existing_transaction():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(system, TxAttribute.REQUIRED)
    base_ctx = _ctx(env, system.main)
    existing = TransactionContext(base_ctx)
    ctx = base_ctx.in_transaction(existing)

    def proc():
        tx_id = yield from container.invoke(ctx, "observe", ())
        return tx_id

    assert run_process(env, proc()) == existing.id
    assert container.transactions_started == 0


def test_requires_new_always_starts_fresh():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(system, TxAttribute.REQUIRES_NEW)
    base_ctx = _ctx(env, system.main)
    existing = TransactionContext(base_ctx)
    ctx = base_ctx.in_transaction(existing)

    def proc():
        tx_id = yield from container.invoke(ctx, "observe", ())
        return tx_id

    observed = run_process(env, proc())
    assert observed is not None and observed != existing.id


def test_not_supported_suspends_transaction():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(system, TxAttribute.NOT_SUPPORTED)
    base_ctx = _ctx(env, system.main)
    existing = TransactionContext(base_ctx)
    ctx = base_ctx.in_transaction(existing)

    def proc():
        tx_id = yield from container.invoke(ctx, "observe", ())
        return tx_id

    assert run_process(env, proc()) is None


def test_supports_runs_with_or_without():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(system, TxAttribute.SUPPORTS)
    ctx_without = _ctx(env, system.main)

    def proc_without():
        tx_id = yield from container.invoke(ctx_without, "observe", ())
        return tx_id

    assert run_process(env, proc_without()) is None
    base_ctx = _ctx(env, system.main)
    existing = TransactionContext(base_ctx)
    ctx_with = base_ctx.in_transaction(existing)

    def proc_with():
        tx_id = yield from container.invoke(ctx_with, "observe", ())
        return tx_id

    assert run_process(env, proc_with()) == existing.id


# ---------------------------------------------------------------------------
# Stateful session semantics
# ---------------------------------------------------------------------------


def test_stateful_instances_isolated_per_session():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(
        system, TxAttribute.NOT_SUPPORTED,
        kind=ComponentKind.STATEFUL_SESSION, impl=_CounterBean,
    )

    def proc():
        counts = []
        for session in ("alice", "alice", "bob"):
            ctx = _ctx(env, system.main, session=session)
            count = yield from container.invoke(ctx, "bump", ())
            counts.append(count)
        return counts

    assert run_process(env, proc()) == [1, 2, 1]
    assert container.instance_count() == 2


def test_stateful_remove_discards_state():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(
        system, TxAttribute.NOT_SUPPORTED,
        kind=ComponentKind.STATEFUL_SESSION, impl=_CounterBean,
    )

    def proc():
        ctx = _ctx(env, system.main, session="alice")
        yield from container.invoke(ctx, "bump", ())
        yield from container.invoke(ctx, "remove", ())
        count = yield from container.invoke(ctx, "bump", ())  # fresh instance
        return count

    assert run_process(env, proc()) == 1
    assert container.instances_removed == 1


def test_stateful_explicit_identity_overrides_session():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    container = _container(
        system, TxAttribute.NOT_SUPPORTED,
        kind=ComponentKind.STATEFUL_SESSION, impl=_CounterBean,
    )

    def proc():
        ctx = _ctx(env, system.main, session="alice")
        yield from container.invoke(ctx, "bump", ())
        count = yield from container.invoke(ctx, "bump", (), identity="shared-key")
        return count

    assert run_process(env, proc()) == 1  # separate identity, fresh state


def test_container_kind_mismatch_rejected():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    descriptor = ComponentDescriptor(
        name="Wrong", kind=ComponentKind.STATEFUL_SESSION, impl=_CounterBean
    )
    with pytest.raises(BeanError):
        StatelessSessionContainer(system.main, descriptor)


# ---------------------------------------------------------------------------
# Stateful passivation
# ---------------------------------------------------------------------------


def _passivating_container(system):
    container = _container(
        system, TxAttribute.NOT_SUPPORTED,
        kind=ComponentKind.STATEFUL_SESSION, impl=_CounterBean,
    )
    return container


def test_passivation_bounds_live_instances():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.main.costs = system.main.costs.variant(stateful_passivation_threshold=3)
    container = _passivating_container(system)

    def proc():
        for index in range(8):
            ctx = _ctx(env, system.main, session=f"user-{index}")
            yield from container.invoke(ctx, "bump", ())

    run_process(env, proc())
    assert container.live_instance_count() <= 3
    assert container.instance_count() == 8  # nothing lost, only passivated
    assert container.passivations >= 5


def test_passivated_state_survives_activation():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.main.costs = system.main.costs.variant(stateful_passivation_threshold=2)
    container = _passivating_container(system)

    def proc():
        # Build up user-0's state, then push it out with other sessions.
        ctx0 = _ctx(env, system.main, session="user-0")
        yield from container.invoke(ctx0, "bump", ())
        yield from container.invoke(ctx0, "bump", ())
        for index in range(1, 5):
            ctx = _ctx(env, system.main, session=f"user-{index}")
            yield from container.invoke(ctx, "bump", ())
        # user-0 is passivated by now; touching it reactivates with state.
        count = yield from container.invoke(ctx0, "bump", ())
        return count

    assert run_process(env, proc()) == 3
    assert container.activations >= 1


def test_lru_victim_selection():
    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.main.costs = system.main.costs.variant(stateful_passivation_threshold=2)
    container = _passivating_container(system)

    def proc():
        for session in ("a", "b", "a", "c"):  # b is the least recently used
            ctx = _ctx(env, system.main, session=session)
            yield from container.invoke(ctx, "bump", ())

    run_process(env, proc())
    assert "b" in container._passivated
    assert "a" in container._instances and "c" in container._instances
