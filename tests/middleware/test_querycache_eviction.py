"""Bounded query caches: the capacity knob and eviction accounting.

Before the LRU refit the per-query entry dict grew without bound for
the life of the server; now every query's entries live in a shared
:class:`~repro.rdbms.lru.LruCache` whose capacity is a manager knob,
and evictions surface in :class:`QueryCacheStats`.
"""

from repro.core.patterns import PatternLevel
from repro.middleware.context import InvocationContext, RequestInfo
from repro.middleware.querycache import QUERY_CACHE_CAPACITY, QueryCacheManager
from repro.rdbms.lru import LruCache
from tests.helpers import run_process, tiny_system


def _ctx(env, server):
    return InvocationContext(
        env=env,
        server=server,
        request=RequestInfo("Notes", "test", "qc", "client-main-0"),
        costs=server.costs,
    )


def _query(env, system, server_name, author):
    server = system.servers[server_name]
    ctx = _ctx(env, server)

    def proc():
        facade = yield from server.lookup(ctx, "NotesFacade")
        rows = yield from facade.call(ctx, "notes_of", author)
        return rows

    return proc()


def test_default_capacity_is_generous():
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    manager = system.servers["edge1"].query_cache
    assert isinstance(manager, QueryCacheManager)
    assert manager.capacity == QUERY_CACHE_CAPACITY


def test_full_cache_evicts_lru_params_and_counts_it():
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    manager = system.servers["edge1"].query_cache
    manager._entries["tiny.notes_of"] = LruCache(2)

    def scenario():
        for author in ("author0", "author1", "author2"):
            yield from _query(env, system, "edge1", author)
        # author0 was evicted by author2's install: a re-read misses.
        yield from _query(env, system, "edge1", "author0")

    run_process(env, scenario())
    stats = manager.stats["tiny.notes_of"]
    assert stats.evictions >= 1
    assert stats.misses == 4  # three cold misses + the post-eviction one
    assert len(manager._entries["tiny.notes_of"]) <= 2


def test_evictions_key_is_emitted_only_when_nonzero():
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    manager = system.servers["edge1"].query_cache

    def scenario():
        yield from _query(env, system, "edge1", "author0")
        yield from _query(env, system, "edge1", "author0")

    run_process(env, scenario())
    stats = manager.stats["tiny.notes_of"]
    # No eviction happened: the snapshot must stay byte-identical with
    # the pre-LRU format (no "evictions" key at all).
    assert "evictions" not in stats.as_dict()
    stats.evictions = 3
    assert stats.as_dict()["evictions"] == 3


def test_eviction_discards_stale_bookkeeping():
    env, system = tiny_system(PatternLevel.QUERY_CACHING)
    manager = system.servers["edge1"].query_cache
    manager._entries["tiny.notes_of"] = LruCache(1)

    def scenario():
        yield from _query(env, system, "edge1", "author0")

    run_process(env, scenario())
    # Mark the resident params stale, then evict them with a new install.
    manager._stale["tiny.notes_of"].add(("author0",))

    def fill():
        yield from _query(env, system, "edge1", "author1")

    run_process(env, fill())
    assert ("author0",) not in manager._stale["tiny.notes_of"]
