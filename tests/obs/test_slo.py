"""SLO objectives: parsing, burn-rate arithmetic, fault-overlay recovery.

The burn rate must follow the standard error-budget formulation — the
window's bad fraction over the objective's budget — and recovery time
must be the simulated gap from fault end to the first compliant window,
because the acceptance tests read those numbers as ground truth.
"""

import json

import pytest

from repro.obs.slo import (
    SloError,
    evaluate_slo,
    export_slo,
    load_slo,
    parse_objectives,
    render_slo_report,
    validate_slo,
)
from repro.obs.timeseries import TimeSeriesRecorder

P95 = {"name": "p95", "metric": "p95", "page": None, "max_ms": 100}
AVAIL = {"name": "avail", "metric": "availability", "target": 0.9}


# -- parsing ------------------------------------------------------------------


def test_parse_accepts_both_metric_kinds():
    parsed = parse_objectives({"objectives": [P95, AVAIL]})
    assert parsed[0]["quantile"] == pytest.approx(0.95)
    assert parsed[0]["max_ms"] == 100.0
    assert parsed[1]["target"] == 0.9


@pytest.mark.parametrize(
    "data",
    [
        {},
        {"objectives": []},
        {"objectives": [{"metric": "p95", "max_ms": 10}]},  # no name
        {"objectives": [P95, P95]},  # duplicate name
        {"objectives": [{"name": "a", "metric": "availability", "target": 1.0}]},
        {"objectives": [{"name": "a", "metric": "availability", "target": 0.0}]},
        {"objectives": [{"name": "a", "metric": "p0", "max_ms": 10}]},
        {"objectives": [{"name": "a", "metric": "pxx", "max_ms": 10}]},
        {"objectives": [{"name": "a", "metric": "latency", "max_ms": 10}]},
        {"objectives": [{"name": "a", "metric": "p95", "max_ms": 0}]},
        {"objectives": [{"name": "a", "metric": "p95", "max_ms": 10, "page": 3}]},
    ],
)
def test_parse_rejects_malformed_objectives(data):
    with pytest.raises(SloError):
        parse_objectives(data)


def test_load_slo_reads_a_file(tmp_path):
    path = tmp_path / "slo.json"
    path.write_text(json.dumps({"objectives": [AVAIL]}))
    assert load_slo(str(path))[0]["name"] == "avail"


def test_default_policy_file_parses():
    assert len(load_slo("policies/slo-default.json")) == 2


# -- evaluation ---------------------------------------------------------------


def _series_state() -> dict:
    """Two windows: one compliant, one with a latency spike and errors."""
    recorder = TimeSeriesRecorder(interval_ms=1000.0, bounds=(50.0, 200.0, 400.0))
    for _ in range(19):
        recorder.observe_response(100.0, "home", 40.0)
    recorder.observe_response(100.0, "home", 40.0)
    # Window 1: half the responses are slow, plus three errors.
    for _ in range(5):
        recorder.observe_response(1100.0, "home", 40.0)
    for _ in range(5):
        recorder.observe_response(1100.0, "home", 300.0)
    recorder.count(1100.0, "requests.errors", 3)
    recorder.fault_windows = (
        {"kind": "partition", "label": "router<->edge1", "start": 1050.0, "end": 1800.0},
    )
    return recorder.to_state()


def test_latency_burn_is_bad_fraction_over_budget():
    report = evaluate_slo(_series_state(), parse_objectives({"objectives": [P95]}))
    entry = report["objectives"]["p95"]
    assert entry["evaluated"] == 2 and entry["violated"] == 1
    good, bad = entry["windows"]
    assert good["ok"] and good["burn"] == pytest.approx(0.0)
    # Window 1: 5/10 observations above 100 ms; budget is 1 - 0.95.
    assert not bad["ok"]
    assert bad["burn"] == pytest.approx(0.5 / 0.05)
    assert bad["in_fault"] and not good["in_fault"]


def test_availability_burn_and_windows_without_traffic_skipped():
    state = _series_state()
    state["windows"]["5"] = {"gauges": {"sessions.active": 0}}  # no traffic
    report = evaluate_slo(state, parse_objectives({"objectives": [AVAIL]}))
    entry = report["objectives"]["avail"]
    assert entry["evaluated"] == 2
    bad = entry["windows"][1]
    assert bad["value"] == pytest.approx(10 / 13)
    assert bad["burn"] == pytest.approx((3 / 13) / 0.1)
    assert not bad["ok"]


def test_recovery_time_measured_from_fault_end():
    state = _series_state()
    # Window 2 is compliant again: recovery at 2000 ms, fault ends 1800.
    recorder = TimeSeriesRecorder.from_state(state)
    recorder.observe_response(2100.0, "home", 40.0)
    report = evaluate_slo(
        recorder.to_state(), parse_objectives({"objectives": [P95]})
    )
    recovery = report["objectives"]["p95"]["recovery"][0]
    assert recovery["fault"] == "partition:router<->edge1"
    assert recovery["recovery_ms"] == pytest.approx(200.0)


def test_recovery_none_when_never_compliant_again():
    report = evaluate_slo(_series_state(), parse_objectives({"objectives": [P95]}))
    assert report["objectives"]["p95"]["recovery"][0]["recovery_ms"] is None


def test_page_scoped_objective_reads_that_page_only():
    objective = {"name": "item", "metric": "p50", "page": "item", "max_ms": 100}
    report = evaluate_slo(
        _series_state(), parse_objectives({"objectives": [objective]})
    )
    # No "item" page in the series: nothing to evaluate, nothing violated.
    assert report["objectives"]["item"]["evaluated"] == 0


# -- rendering and artifact ---------------------------------------------------


def test_render_report_shows_verdict_worst_window_and_recovery():
    report = evaluate_slo(
        _series_state(), parse_objectives({"objectives": [P95, AVAIL]})
    )
    text = render_slo_report("rubis/L2", report)
    assert "rubis/L2" in text and "VIOLATED" in text
    assert "worst window @ 1s" in text and "[fault]" in text
    assert "never recovered" in text


def test_export_validate_round_trip(tmp_path):
    report = evaluate_slo(_series_state(), parse_objectives({"objectives": [P95]}))
    path = tmp_path / "slo.json"
    export_slo({"rubis/L2": report}, str(path))
    data = json.loads(path.read_text())
    assert validate_slo(data) == []
    data["slo"]["rubis/L2"]["objectives"]["p95"]["violated"] = 99
    assert any("violated" in problem for problem in validate_slo(data))
