"""MetricsRegistry instruments, merge semantics, and export determinism.

The load-bearing property mirrors the tables/figures contract: the
``--metrics-out`` artifact is byte-identical whether the sweep ran
serially or across a worker pool.
"""

import json

import pytest

from repro.core.patterns import PatternLevel
from repro.experiments import calibration
from repro.experiments.runner import run_configuration, run_series
from repro.obs.export import export_metrics, validate_metrics
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    collect_cache_stats,
    merge_cache_stats,
)

FAST = calibration.default_workload(duration_ms=20_000.0, warmup_ms=5_000.0)
LEVELS = [PatternLevel.CENTRALIZED, PatternLevel.QUERY_CACHING]


# -- instruments --------------------------------------------------------------


def test_counter_rejects_decrease():
    counter = Counter()
    counter.inc(3)
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 3


def test_histogram_buckets_and_mean():
    histogram = Histogram(bounds=(10.0, 100.0))
    for value in (5.0, 50.0, 500.0):
        histogram.observe(value)
    assert histogram.counts == [1, 1, 1]
    assert histogram.count == 3
    assert histogram.mean == pytest.approx(185.0)


def test_registry_rejects_type_conflicts_and_snapshots_sorted():
    registry = MetricsRegistry()
    registry.counter("b.total").inc(2)
    registry.gauge("a.level").set(7)
    registry.histogram("c.lag").observe(12.0)
    with pytest.raises(ValueError):
        registry.gauge("b.total")
    state = registry.to_state()
    assert list(state["counters"]) == sorted(state["counters"])
    assert registry.value("b.total") == 2
    assert registry.value("a.level") == 7
    restored = MetricsRegistry.from_state(state)
    assert restored.to_state() == state


def test_merge_state_adds_counters_and_maxes_gauges():
    first = MetricsRegistry()
    first.counter("n").inc(2)
    first.gauge("u").set(0.3)
    first.histogram("h", bounds=(1.0,)).observe(0.5)
    second = MetricsRegistry()
    second.counter("n").inc(5)
    second.gauge("u").set(0.9)
    second.histogram("h", bounds=(1.0,)).observe(2.0)
    first.merge_state(second.to_state())
    assert first.value("n") == 7
    assert first.value("u") == 0.9
    merged_h = first.to_state()["histograms"]["h"]
    assert merged_h["count"] == 2 and merged_h["counts"] == [1, 1]


def test_merge_cache_stats_sums_leafwise():
    one = {"query_cache": {"edge1": {"q": {"hits": 2, "misses": 1}}}, "replicas": {}}
    two = {"query_cache": {"edge1": {"q": {"hits": 3}}}, "replicas": {}}
    merged = merge_cache_stats(one, two, None)
    assert merged["query_cache"]["edge1"]["q"] == {"hits": 5, "misses": 1}


# -- collection from a real run ----------------------------------------------


@pytest.fixture(scope="module")
def metric_result():
    return run_configuration(
        "petstore",
        PatternLevel.QUERY_CACHING,
        workload=FAST,
        seed=7,
        with_metrics=True,
    )


def test_collect_system_metrics_covers_every_layer(metric_result):
    names = metric_result.metrics.names()
    assert "app_server.main.http_requests" in names
    assert "db.statements" in names
    assert "db.executor.index_scans" in names
    assert "db.executor.full_scans" in names
    assert "workload.requests" in names
    assert any(name.startswith("querycache.") for name in names)
    assert any(name.startswith("replica.") for name in names)
    assert metric_result.metrics.value("workload.requests") > 0
    assert metric_result.metrics.value("db.executor.index_scans") > 0


def test_cache_stats_survive_the_run(metric_result):
    stats = metric_result.cache_stats
    assert stats is not None
    assert set(stats) == {"query_cache", "replicas"}
    hits = sum(
        counters.get("hits", 0)
        for per_server in stats["replicas"].values()
        for counters in per_server.values()
    )
    assert hits > 0
    # Canonical nesting: server keys sorted.
    assert list(stats["replicas"]) == sorted(stats["replicas"])


def test_cache_stats_match_metrics_registry(metric_result):
    """querycache.* counters are exactly the cache_stats leaves."""
    stats = collect_cache_stats(metric_result.system)
    for server, per_query in stats["query_cache"].items():
        for query_id, counters in per_query.items():
            for counter_name, value in counters.items():
                name = f"querycache.{server}.{query_id}.{counter_name}"
                assert metric_result.metrics.value(name) == value


# -- serial/parallel byte identity -------------------------------------------


def test_metrics_export_byte_identical_serial_vs_parallel(tmp_path):
    serial = run_series(
        "petstore", levels=LEVELS, workload=FAST, seed=21,
        with_metrics=True, jobs=1,
    )
    parallel = run_series(
        "petstore", levels=LEVELS, workload=FAST, seed=21,
        with_metrics=True, jobs=2,
    )

    def cells(results):
        return [
            (f"petstore/L{int(level)}", results[level].metrics_state)
            for level in LEVELS
        ]

    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    export_metrics(cells(serial), str(serial_path))
    export_metrics(cells(parallel), str(parallel_path))
    assert serial_path.read_bytes() == parallel_path.read_bytes()
    assert validate_metrics(json.loads(serial_path.read_text())) == []


def test_cell_results_carry_observability_snapshots():
    results = run_series(
        "petstore", levels=[PatternLevel.QUERY_CACHING], workload=FAST,
        seed=21, with_metrics=True, jobs=2,
    )
    cell = results[PatternLevel.QUERY_CACHING]
    assert cell.metrics_state is not None
    assert cell.cache_stats is not None
    assert cell.spans_state is None  # spans were not requested
    assert any(
        name.startswith("querycache.") for name in cell.metrics_state["counters"]
    )
