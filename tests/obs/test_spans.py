"""Span-tree construction across RMI, JDBC and JMS boundaries.

The load-bearing properties: every client page request forms exactly one
span tree rooted at its HTTP span; at the remote-façade level a remote
client's tree contains exactly one wide-area RMI span on the client
path; asynchronous JMS deliveries attach to their publish span, so
replica maintenance is excluded from the client path structurally.
"""

import pytest

from repro.core.patterns import PatternLevel
from repro.core.rules import DesignRuleChecker
from repro.experiments import calibration
from repro.experiments.runner import run_configuration
from repro.middleware.updates import UPDATER_FACADE
from repro.obs.spans import (
    MAINTENANCE_KINDS,
    Span,
    SpanRecorder,
    build_trees,
    client_path_wan_calls,
    spans_to_call_records,
)

FAST = calibration.default_workload(duration_ms=20_000.0, warmup_ms=5_000.0)
LONG = calibration.default_workload(duration_ms=60_000.0, warmup_ms=5_000.0)


@pytest.fixture(scope="module")
def facade_result():
    """Pet Store at the remote-façade level with span recording on."""
    return run_configuration(
        "petstore",
        PatternLevel.REMOTE_FACADE,
        workload=FAST,
        seed=7,
        with_spans=True,
        with_trace=True,
    )


@pytest.fixture(scope="module")
def async_result():
    """Pet Store at level 5 (long enough for buyer writes to commit)."""
    return run_configuration(
        "petstore",
        PatternLevel.ASYNC_UPDATES,
        workload=LONG,
        seed=7,
        with_spans=True,
    )


# -- recorder unit behaviour -------------------------------------------------


def test_recorder_disabled_records_nothing():
    recorder = SpanRecorder(enabled=False)
    assert recorder.start_span("http", "GET x", node="n", time=0.0) is None
    assert len(recorder) == 0 and recorder.dropped == 0


def test_recorder_max_spans_counts_drops_and_keeps_ids_stable():
    recorder = SpanRecorder(max_spans=2)
    first = recorder.start_span("http", "a", node="n", time=0.0)
    second = recorder.start_span("rmi", "b", node="n", time=1.0)
    dropped = recorder.start_span("jdbc", "c", node="n", time=2.0)
    survivor = SpanRecorder(max_spans=3)
    for name in ("a", "b", "c"):
        survivor.start_span("http", name, node="n", time=0.0)
    assert dropped is None and recorder.dropped == 1
    assert [first.id, second.id] == [1, 2]
    # The dropped span consumed id 3: a later recorder with room gives
    # the same ids to the same sequence of starts.
    assert [span.id for span in survivor.spans] == [1, 2, 3]


def test_state_roundtrip_preserves_spans_and_dropped():
    recorder = SpanRecorder(max_spans=1)
    span = recorder.start_span(
        "http", "GET Main", node="client-1", time=5.0,
        request_id=9, page="Main", group="remote",
    )
    recorder.start_span("rmi", "over", node="main", time=6.0)  # dropped
    recorder.finish_span(span, 17.5)
    restored = SpanRecorder.from_state(recorder.to_state())
    assert restored.dropped == 1
    assert len(restored.spans) == 1
    copy = restored.spans[0]
    assert (copy.id, copy.kind, copy.page, copy.start, copy.end) == (
        span.id, "http", "Main", 5.0, 17.5,
    )
    # Ids continue past the highest restored id.
    fresh = restored.start_span("jdbc", "q", node="main", time=20.0)
    assert fresh.id > span.id


def test_build_trees_orphans_become_roots():
    spans = [
        Span(id=1, parent_id=None, request_id=1, kind="http", name="r", node="n", start=0),
        Span(id=2, parent_id=1, request_id=1, kind="rmi", name="c", node="n", start=1),
        Span(id=3, parent_id=99, request_id=2, kind="jdbc", name="o", node="n", start=2),
    ]
    trees = build_trees(spans)
    assert [tree.root.id for tree in trees] == [1, 3]
    assert trees[0].size() == 2


# -- trees from a real run ---------------------------------------------------


def test_every_page_request_is_one_http_rooted_tree(facade_result):
    spans = facade_result.spans
    assert spans.dropped == 0
    assert not spans.unfinished()
    trees = spans.trees()
    http_spans = spans.by_kind("http")
    assert len(trees) == len(http_spans) > 0
    assert all(tree.root.kind == "http" for tree in trees)
    # Request ids never mix between trees: one tree per page request.
    for tree in trees:
        ids = {span.request_id for span in tree.walk(skip_kinds=MAINTENANCE_KINDS)}
        assert ids == {tree.root.request_id}


def test_remote_facade_trees_have_one_wan_rmi_on_client_path(facade_result):
    exclude = frozenset({UPDATER_FACADE})
    remote_trees = [
        tree for tree in facade_result.spans.trees() if not tree.root.group.startswith("local-")
    ]
    assert remote_trees
    for tree in remote_trees:
        count = client_path_wan_calls(tree, exclude_targets=exclude)
        budget = 2 if tree.root.page == "Verify Signin" else 1
        assert count <= budget, f"{tree.root.page}: {count} WAN calls"
    # And the façade pattern actually uses the WAN: at least one tree
    # with exactly one wide-area RMI.
    assert any(
        client_path_wan_calls(tree, exclude_targets=exclude) == 1
        for tree in remote_trees
    )


def test_jdbc_spans_nest_under_the_facade_rmi(facade_result):
    """A remote client's JDBC work happens inside the RMI subtree."""
    for tree in facade_result.spans.trees():
        if tree.root.group.startswith("local-"):
            continue
        rmi_subtree_ids = set()
        for span in tree.walk(skip_kinds=MAINTENANCE_KINDS):
            if span.kind == "rmi":
                stack = [span]
                while stack:
                    current = stack.pop()
                    rmi_subtree_ids.add(current.id)
                    stack.extend(tree.children_of(current))
        for span in tree.walk(skip_kinds=MAINTENANCE_KINDS):
            if span.kind == "jdbc":
                assert span.id in rmi_subtree_ids


def test_design_rule_checker_uses_span_trees(facade_result):
    checker = DesignRuleChecker(
        facade_result.system, page_exceptions={"Verify Signin": 2}
    )
    report = checker.check(spans=facade_result.spans)
    assert report.ok, report.summary()
    assert "R2" in report.checked_rules
    assert report.metrics["max_wan_calls_seen"] >= 1.0


def test_span_and_trace_projections_agree(facade_result):
    """Spans and the flat Trace agree on wide-area RMI counts."""
    trace_wan_rmi = len(facade_result.trace.wide_area_calls("rmi"))
    span_wan_rmi = sum(
        1
        for span in facade_result.spans.spans
        if span.kind == "rmi" and span.wide_area
    )
    assert span_wan_rmi == trace_wan_rmi
    projected = spans_to_call_records(facade_result.spans.spans)
    assert len([p for p in projected if p[0] == "rmi"]) == len(
        facade_result.spans.by_kind("rmi")
    )


# -- asynchronous boundaries --------------------------------------------------


def test_jms_deliveries_attach_to_their_publish_span(async_result):
    spans = async_result.spans
    by_id = {span.id: span for span in spans.spans}
    deliveries = spans.by_kind("jms-delivery")
    publishes = spans.by_kind("jms")
    assert publishes and deliveries
    for delivery in deliveries:
        parent = by_id[delivery.parent_id]
        assert parent.kind == "jms"
    # Every publish sits under a "propagate" span, which keeps the
    # whole maintenance subtree off the client path.
    for publish in publishes:
        assert by_id[publish.parent_id].kind == "propagate"


def test_async_updates_keep_client_path_clean(async_result):
    exclude = frozenset({UPDATER_FACADE})
    for tree in async_result.spans.trees():
        if tree.root.kind != "http":
            continue
        budget = 2 if tree.root.page == "Verify Signin" else 1
        assert client_path_wan_calls(tree, exclude_targets=exclude) <= budget


def test_r2_falls_back_to_flat_trace_when_spans_dropped(facade_result):
    """A truncated recorder must not silently pass the R2 check."""
    truncated = SpanRecorder.from_state(facade_result.spans.to_state())
    truncated.dropped = 5
    checker = DesignRuleChecker(
        facade_result.system, page_exceptions={"Verify Signin": 2}
    )
    report = checker.check(trace=facade_result.trace, spans=truncated)
    # Fall-back still checks R2 (via the flat trace) and still passes.
    assert "R2" in report.checked_rules
    assert report.ok, report.summary()


# -- deterministic per-session sampling ---------------------------------------


def test_sample_decision_is_deterministic_across_recorders():
    """Same session id, same verdict, in every process — CRC32, not hash()."""
    ids = [f"client-{i}-session-{j}" for i in range(8) for j in range(40)]
    first = SpanRecorder(sample_rate=0.25)
    second = SpanRecorder(sample_rate=0.25)
    assert [first.sample(s) for s in ids] == [second.sample(s) for s in ids]
    # The hash spreads: the kept fraction lands near the rate.
    assert 0.15 < first.sampled_requests / len(ids) < 0.35
    assert first.sampled_requests + first.skipped_requests == len(ids)


def test_sample_rate_one_keeps_everything():
    recorder = SpanRecorder()
    assert all(recorder.sample(f"s{i}") for i in range(50))
    assert recorder.skipped_requests == 0
    assert recorder.sampled_requests == 50


def test_sample_rate_validated():
    import pytest as _pytest

    for rate in (0.0, -0.1, 1.5):
        with _pytest.raises(ValueError):
            SpanRecorder(sample_rate=rate)


def test_sampling_state_keys_only_present_when_sampling():
    full = SpanRecorder()
    assert "sample_rate" not in full.to_state()  # legacy artifacts unchanged
    sampled = SpanRecorder(sample_rate=0.5)
    sampled.sample("a")
    sampled.sample("b")
    state = sampled.to_state()
    assert state["sample_rate"] == 0.5
    assert state["sampled_requests"] + state["skipped_requests"] == 2
    restored = SpanRecorder.from_state(state)
    assert restored.sample_rate == 0.5
    assert restored.sampled_requests == state["sampled_requests"]


def test_trace_summary_reports_sampled_fraction():
    from dataclasses import replace

    from repro.simnet.monitor import TraceSummary

    summary = TraceSummary(records=10, by_kind={"rmi": 3, "jdbc": 7})
    assert "spans sampled" not in summary.render()
    sampled = replace(summary, span_sample_rate=0.25, spans_sampled=3,
                      spans_skipped=9)
    text = sampled.render()
    assert "spans sampled 3/12 sessions (rate 0.25)" in text
