"""Collapsed-stack folding: self-time arithmetic, merge, render, validate.

The invariant the flamegraph rests on: every finished span contributes
exactly its self time (duration minus finished children) under its full
parent chain, so column widths sum to wall time per request and the
``[wan]`` frames isolate wide-area cost at every depth.
"""

import pytest

from repro.obs.flame import (
    collapse_spans,
    layer_self_times,
    merge_folded,
    render_attribution,
    render_flame_html,
    render_folded,
    validate_flamegraph,
)


def _spans():
    """http(0-100) > rmi[wan](10-40) > jdbc(15-35): self 70/10/20 ms."""
    return [
        {"id": 1, "parent_id": None, "kind": "http", "name": "GET /item",
         "node": "edge1", "start": 0.0, "end": 100.0, "wide_area": False},
        {"id": 2, "parent_id": 1, "kind": "rmi", "name": "ItemFacade.get",
         "node": "edge1", "start": 10.0, "end": 40.0, "wide_area": True},
        {"id": 3, "parent_id": 2, "kind": "jdbc", "name": "q7",
         "node": "main", "start": 15.0, "end": 35.0, "wide_area": False},
    ]


def test_collapse_assigns_self_time_in_integer_microseconds():
    folded = collapse_spans(_spans())
    assert folded == {
        "http:GET /item": 70_000,
        "http:GET /item;rmi:ItemFacade.get [wan]": 10_000,
        "http:GET /item;rmi:ItemFacade.get [wan];jdbc:q7": 20_000,
    }


def test_collapse_prefixes_cell_label_and_skips_unfinished():
    spans = _spans()
    spans.append({"id": 4, "parent_id": 1, "kind": "rmi", "name": "inflight",
                  "node": "edge1", "start": 90.0, "end": None,
                  "wide_area": True})
    folded = collapse_spans(spans, root_prefix="rubis/L2")
    assert all(stack.startswith("rubis/L2;") for stack in folded)
    assert not any("inflight" in stack for stack in folded)


def test_truncated_parent_roots_its_own_stack():
    orphan = [{"id": 9, "parent_id": 4, "kind": "jdbc", "name": "q1",
               "node": "main", "start": 0.0, "end": 5.0, "wide_area": False}]
    assert collapse_spans(orphan) == {"jdbc:q1": 5_000}


def test_merge_folded_adds_weights():
    first = collapse_spans(_spans())
    merged = merge_folded(first, {"http:GET /item": 1_000, "other:x": 2})
    assert merged["http:GET /item"] == 71_000
    assert merged["other:x"] == 2


def test_render_folded_round_trips_through_validate():
    text = render_folded(collapse_spans(_spans()))
    assert text.endswith("\n")
    assert validate_flamegraph(text) == []
    # Frames contain spaces; the weight is still the last token.
    line = text.splitlines()[0]
    assert line.rpartition(" ")[2].isdigit()


@pytest.mark.parametrize(
    "text,needle",
    [
        ("", "empty"),
        ("stack 0\n", "non-positive"),
        ("stack x\n", "not an integer"),
        ("b:x 1\na:y 1\n", "sorted"),
        (" 5\n", "no stack"),
    ],
)
def test_validate_flamegraph_flags_problems(text, needle):
    problems = validate_flamegraph(text)
    assert any(needle in problem for problem in problems)


def test_layer_self_times_projects_kinds_and_wan():
    layers = layer_self_times(_spans())
    assert layers == pytest.approx(
        {"web": 70.0, "rmi@wan": 10.0, "jdbc": 20.0}
    )


def test_render_attribution_includes_think_and_total():
    text = render_attribution("rubis/L2", layer_self_times(_spans()), think_ms=900.0)
    assert "rubis/L2" in text and "think" in text and "total" in text
    # think dominates: 900 of 1000 ms == 90%.
    assert "90.0%" in text
    empty = render_attribution("x", {})
    assert "no finished spans" in empty


def test_render_flame_html_is_self_contained():
    html = render_flame_html(collapse_spans(_spans()))
    assert html.startswith("<!DOCTYPE html>")
    assert "ItemFacade.get" in html and "frame wan" in html
    assert "100_000" not in html  # weights rendered as plain integers
    assert "100000 us total self time" in html
