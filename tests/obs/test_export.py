"""Chrome trace export: schema validity, determinism, and the CLI gate."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.patterns import PatternLevel
from repro.experiments import calibration
from repro.experiments.runner import run_configuration, run_series
from repro.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)

FAST = calibration.default_workload(duration_ms=20_000.0, warmup_ms=5_000.0)


@pytest.fixture(scope="module")
def facade_spans_state():
    result = run_configuration(
        "petstore",
        PatternLevel.REMOTE_FACADE,
        workload=FAST,
        seed=7,
        with_spans=True,
    )
    return result.spans_state


def test_chrome_trace_schema(facade_spans_state):
    data = chrome_trace_events([("petstore/L2", facade_spans_state)])
    assert validate_chrome_trace(data) == []
    events = data["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert complete and metadata
    # Process row named after the cell, thread rows after nodes.
    assert any(
        e["name"] == "process_name" and e["args"]["name"] == "petstore/L2"
        for e in metadata
    )
    for event in complete:
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert "span_id" in event["args"]
    # Microsecond conversion: span at t=5ms renders at ts=5000.
    first_http = next(e for e in complete if e.get("cat") == "http")
    source = facade_spans_state["spans"][first_http["args"]["span_id"] - 1]
    assert first_http["ts"] == pytest.approx(source["start"] * 1000.0)


def test_chrome_trace_has_complete_span_trees(facade_spans_state):
    data = chrome_trace_events([("cell", facade_spans_state)])
    spans = {
        e["args"]["span_id"]: e for e in data["traceEvents"] if e["ph"] == "X"
    }
    roots = [
        e for e in spans.values()
        if e["args"]["parent_id"] is None and e.get("cat") == "http"
    ]
    assert roots
    children = set()
    for event in spans.values():
        parent = event["args"]["parent_id"]
        if parent is not None:
            assert parent in spans  # every parent resolvable
            children.add(parent)
    assert any(r["args"]["span_id"] in children for r in roots)


def test_export_writes_canonical_json(tmp_path, facade_spans_state):
    path = tmp_path / "trace.json"
    export_chrome_trace([("cell", facade_spans_state)], str(path))
    text = path.read_text()
    data = json.loads(text)
    assert validate_chrome_trace(data) == []
    # Canonical form: compact separators, sorted keys, trailing newline.
    assert text.endswith("\n")
    assert json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n" == text


def test_validate_rejects_broken_traces():
    assert validate_chrome_trace([]) == ["top level is not an object"]
    assert validate_chrome_trace({}) == ["missing traceEvents array"]
    no_tree = {
        "traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "x", "ts": 0, "dur": 1,
             "args": {"span_id": 1, "parent_id": 99}},
        ]
    }
    problems = validate_chrome_trace(no_tree)
    assert any("unresolvable parent" in p for p in problems)
    assert any("no complete span tree" in p for p in problems)


def test_validate_cli_gates_artifacts(tmp_path, facade_spans_state):
    good = tmp_path / "good.json"
    bad = tmp_path / "bad.json"
    export_chrome_trace([("cell", facade_spans_state)], str(good))
    bad.write_text('{"traceEvents": []}')

    def run_validate(*files):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", *map(str, files)],
            capture_output=True, text=True, env=env,
        )

    ok = run_validate(good)
    assert ok.returncode == 0 and "ok" in ok.stdout
    fail = run_validate(good, bad)
    assert fail.returncode == 1
    assert "INVALID" in fail.stderr


def test_trace_export_byte_identical_serial_vs_parallel(tmp_path):
    levels = [PatternLevel.CENTRALIZED, PatternLevel.REMOTE_FACADE]
    serial = run_series(
        "petstore", levels=levels, workload=FAST, seed=21,
        with_spans=True, jobs=1,
    )
    parallel = run_series(
        "petstore", levels=levels, workload=FAST, seed=21,
        with_spans=True, jobs=2,
    )

    def cells(results):
        return [
            (f"petstore/L{int(level)}", results[level].spans_state)
            for level in levels
        ]

    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    export_chrome_trace(cells(serial), str(serial_path))
    export_chrome_trace(cells(parallel), str(parallel_path))
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_trace_summary_render_reports_dropped():
    from repro.simnet.monitor import CallRecord, Trace

    trace = Trace(max_records=1)
    for index in range(3):
        trace.record(
            CallRecord(
                time=float(index), kind="rmi", src_node="a", dst_node="b",
                target="X", method="m", wide_area=True,
            )
        )
    rendered = trace.summary().render()
    assert "1 calls" in rendered
    assert "2 dropped" in rendered
    assert "1 wide-area" in rendered
