"""Windowed telemetry: histogram quantiles, recorder state, merge identity.

Satellite properties: ``Histogram.percentile`` interpolates inside the
bucket holding the q-th observation and is exact (to within one bucket
width) on known distributions; ``TimeSeriesRecorder`` state survives a
serialize/merge round trip with counters adding, gauges maxing and
histogram counts adding — the algebra the ``--jobs N`` byte-identity
rests on.
"""

import json

import pytest

from repro.obs.export import export_series, validate_series
from repro.obs.metrics import Histogram
from repro.obs.timeseries import HDR_BOUNDS, TimeSeriesRecorder, _hdr_bounds


# -- percentile / cdf against exact answers ----------------------------------


def test_percentile_interpolates_uniform_distribution():
    """Uniform 1..100 against decade-free 10-wide buckets: p95 is exact."""
    histogram = Histogram(bounds=tuple(float(b) for b in range(10, 101, 10)))
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.percentile(0.95) == pytest.approx(95.0)
    assert histogram.percentile(0.50) == pytest.approx(50.0)
    assert histogram.percentile(0.10) == pytest.approx(10.0)
    # Extremes clamp to the grid, not beyond it.
    assert histogram.percentile(1.0) == pytest.approx(100.0)
    assert 0.0 <= histogram.percentile(0.0) <= 10.0


def test_percentile_one_observation_per_bucket():
    """{5, 15, 25, 35}: the median interpolates to the 15/25 midpoint."""
    histogram = Histogram(bounds=(10.0, 20.0, 30.0, 40.0))
    for value in (5.0, 15.0, 25.0, 35.0):
        histogram.observe(value)
    assert histogram.percentile(0.5) == pytest.approx(20.0)
    assert histogram.percentile(0.25) == pytest.approx(10.0)


def test_percentile_overflow_clamps_to_last_finite_bound():
    histogram = Histogram(bounds=(10.0,))
    histogram.observe(100.0)
    histogram.observe(200.0)
    assert histogram.percentile(0.99) == pytest.approx(10.0)


def test_percentile_empty_histogram_is_zero():
    assert Histogram(bounds=(10.0,)).percentile(0.95) == 0.0


def test_cdf_interpolates_and_is_monotone():
    histogram = Histogram(bounds=tuple(float(b) for b in range(10, 101, 10)))
    for value in range(1, 101):
        histogram.observe(float(value))
    assert histogram.cdf(95.0) == pytest.approx(0.95)
    assert histogram.cdf(50.0) == pytest.approx(0.50)
    assert histogram.cdf(100.0) == pytest.approx(1.0)
    samples = [histogram.cdf(float(v)) for v in range(0, 120, 5)]
    assert samples == sorted(samples)


def test_cdf_overflow_mass_counts_above_any_finite_value():
    histogram = Histogram(bounds=(10.0,))
    histogram.observe(5.0)
    histogram.observe(100.0)  # overflow bucket
    assert histogram.cdf(50.0) == pytest.approx(0.5)
    assert Histogram(bounds=(10.0,)).cdf(1.0) == 1.0  # vacuously compliant


def test_hdr_bounds_grid_shape():
    assert list(HDR_BOUNDS) == sorted(HDR_BOUNDS)
    assert HDR_BOUNDS[0] == 1.0
    assert HDR_BOUNDS[-1] == 60_000.0
    # ~12 buckets per decade: adjacent ratio stays near 10^(1/12).
    ratios = [b / a for a, b in zip(HDR_BOUNDS, HDR_BOUNDS[1:-1])]
    assert all(1.15 < r < 1.30 for r in ratios)
    assert _hdr_bounds(1.0, 10.0, per_decade=1) == (1.0, 10.0)


# -- recorder windows ---------------------------------------------------------


def test_observe_response_bins_by_simulated_time():
    recorder = TimeSeriesRecorder(interval_ms=1000.0, bounds=(50.0, 500.0))
    recorder.observe_response(100.0, "home", 40.0)
    recorder.observe_response(999.0, "home", 60.0)
    recorder.observe_response(1500.0, "item", 400.0)
    assert recorder.indices() == [0, 1]
    assert recorder.window_start(1) == 1000.0
    assert recorder.counter_series("responses") == [(0.0, 2), (1000.0, 1)]
    # Window 0 holds both the page and the _all aggregate.
    quantiles = recorder.window_quantiles(0)
    assert set(quantiles) == {"_all", "home"}
    assert quantiles["_all"].count == 2
    series = recorder.quantile_series("_all", 0.5)
    assert [start for start, _ in series] == [0.0, 1000.0]


def test_count_and_gauge_accessors():
    recorder = TimeSeriesRecorder(interval_ms=500.0)
    recorder.count(100.0, "drops", 3)
    recorder.count(100.0, "drops", 0)  # zero deltas are not stored
    recorder.record_gauge(600.0, "active", 17)
    assert recorder.counter_series("drops") == [(0.0, 3)]
    assert recorder.gauge_series("active") == [(500.0, 17)]


def test_recorder_rejects_bad_interval_and_bounds():
    with pytest.raises(ValueError):
        TimeSeriesRecorder(interval_ms=0.0)
    with pytest.raises(ValueError):
        TimeSeriesRecorder(bounds=(10.0, 5.0))


# -- state round trip and merge algebra ---------------------------------------


def _sample_recorder() -> TimeSeriesRecorder:
    recorder = TimeSeriesRecorder(interval_ms=1000.0, bounds=(50.0, 500.0))
    recorder.observe_response(100.0, "home", 40.0)
    recorder.observe_response(1200.0, "item", 300.0)
    recorder.count(150.0, "sessions.dropped", 2)
    recorder.record_gauge(150.0, "sessions.active", 5)
    return recorder


def test_state_round_trip_is_exact():
    recorder = _sample_recorder()
    state = recorder.to_state()
    assert TimeSeriesRecorder.from_state(state).to_state() == state
    # Canonical form: window keys are strings, sections sorted.
    assert all(isinstance(key, str) for key in state["windows"])
    for entry in state["windows"].values():
        for section in ("counters", "gauges", "quantiles"):
            if section in entry:
                assert list(entry[section]) == sorted(entry[section])


def test_merge_adds_counters_maxes_gauges_adds_quantiles():
    first = _sample_recorder()
    second = TimeSeriesRecorder(interval_ms=1000.0, bounds=(50.0, 500.0))
    second.observe_response(400.0, "home", 450.0)
    second.count(100.0, "sessions.dropped", 7)
    second.record_gauge(100.0, "sessions.active", 3)
    first.merge_state(second.to_state())
    assert first.counter_series("sessions.dropped") == [(0.0, 9)]
    assert first.gauge_series("sessions.active") == [(0.0, 5)]  # max wins
    merged = first.window_quantiles(0)["home"]
    assert merged.count == 2
    assert merged.total == pytest.approx(490.0)


def test_merge_rejects_mismatched_grids():
    recorder = TimeSeriesRecorder(interval_ms=1000.0)
    with pytest.raises(ValueError):
        recorder.merge_state({"interval_ms": 500.0, "bounds": list(HDR_BOUNDS)})
    with pytest.raises(ValueError):
        recorder.merge_state({"interval_ms": 1000.0, "bounds": [1.0, 2.0]})


def test_merge_unions_fault_windows_without_duplicates():
    row = {"kind": "partition", "label": "router<->edge1", "start": 5000.0, "end": 9000.0}
    first = TimeSeriesRecorder(interval_ms=1000.0)
    first.fault_windows = (dict(row),)
    other = TimeSeriesRecorder(interval_ms=1000.0)
    other.fault_windows = (
        dict(row),
        {"kind": "crash", "label": "edge2", "start": 2000.0, "end": 4000.0},
    )
    first.merge_state(other.to_state())
    assert [w["kind"] for w in first.fault_windows] == ["crash", "partition"]


def test_series_export_validates_clean(tmp_path):
    path = tmp_path / "series.json"
    export_series([("app/L2", _sample_recorder().to_state())], str(path))
    data = json.loads(path.read_text())
    assert validate_series(data) == []
    # Canonical writer: compact separators, sorted keys, trailing newline.
    text = path.read_text()
    assert text.endswith("\n") and '": ' not in text


def test_validate_series_flags_corrupt_quantiles(tmp_path):
    state = _sample_recorder().to_state()
    state["windows"]["0"]["quantiles"]["home"]["count"] = 99
    problems = validate_series({"series": {"app/L2": state}})
    assert problems and any("count" in problem for problem in problems)
