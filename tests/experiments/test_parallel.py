"""Tests for the parallel experiment execution layer.

The load-bearing property: a sweep's tables and figures are
byte-identical whether the cells ran serially in one process or fanned
out across a worker pool — whatever the worker count and completion
order.
"""

import io
import pickle

import pytest

from repro.core.patterns import PatternLevel
from repro.experiments import calibration
from repro.experiments.figures import build_figure, figure_to_csv, render_figure
from repro.experiments.parallel import (
    CellResult,
    CellTask,
    default_jobs,
    run_cells,
    run_series_parallel,
)
from repro.experiments.progress import ProgressReporter
from repro.experiments.runner import run_series
from repro.experiments.tables import build_table, render_table, table_to_csv

FAST = calibration.default_workload(duration_ms=20_000.0, warmup_ms=5_000.0)
LEVELS = [PatternLevel.CENTRALIZED, PatternLevel.STATEFUL_CACHING]


@pytest.fixture(scope="module")
def serial_series():
    return run_series("rubis", levels=LEVELS, workload=FAST, seed=21, jobs=1)


@pytest.fixture(scope="module")
def parallel_series():
    return run_series("rubis", levels=LEVELS, workload=FAST, seed=21, jobs=2)


# ---------------------------------------------------------------------------
# Determinism: serial and parallel sweeps are indistinguishable downstream
# ---------------------------------------------------------------------------


def test_parallel_series_returns_cell_results(parallel_series):
    assert set(parallel_series) == set(LEVELS)
    for level, result in parallel_series.items():
        assert isinstance(result, CellResult)
        assert result.app == "rubis"
        assert result.level == level
        assert result.wall_seconds > 0
        assert result.total_requests > 0


def test_serial_and_parallel_monitor_tables_identical(serial_series, parallel_series):
    for level in LEVELS:
        assert (
            serial_series[level].monitor.table()
            == parallel_series[level].monitor.table()
        ), level


def test_serial_and_parallel_rendered_output_identical(serial_series, parallel_series):
    serial_table = build_table(serial_series)
    parallel_table = build_table(parallel_series)
    assert render_table(serial_table) == render_table(parallel_table)
    assert table_to_csv(serial_table) == table_to_csv(parallel_table)
    serial_figure = build_figure(serial_series)
    parallel_figure = build_figure(parallel_series)
    assert render_figure(serial_figure) == render_figure(parallel_figure)
    assert figure_to_csv(serial_figure) == figure_to_csv(parallel_figure)


def test_result_order_is_canonical_regardless_of_completion(parallel_series):
    assert list(parallel_series) == LEVELS
    results = run_cells(
        [("rubis", LEVELS[1]), ("rubis", LEVELS[0])],
        workload=FAST,
        seed=21,
        jobs=1,
    )
    assert list(results) == [("rubis", LEVELS[0]), ("rubis", LEVELS[1])]


# ---------------------------------------------------------------------------
# CellResult: picklable, reporting-compatible with ExperimentResult
# ---------------------------------------------------------------------------


def test_cell_result_pickle_roundtrip(parallel_series):
    result = parallel_series[LEVELS[0]]
    copy = pickle.loads(pickle.dumps(result))
    assert copy.app == result.app
    assert copy.level == result.level
    assert copy.monitor.table() == result.monitor.table()
    for group in result.groups():
        assert copy.session_mean(group) == result.session_mean(group)


def test_cell_result_matches_experiment_result_surface(
    serial_series, parallel_series
):
    serial = serial_series[LEVELS[0]]
    parallel = parallel_series[LEVELS[0]]
    assert parallel.groups() == serial.monitor.groups()
    for group in serial.monitor.groups():
        assert parallel.session_mean(group) == serial.session_mean(group)
        for page in serial.monitor.pages(group):
            assert parallel.mean(group, page) == serial.mean(group, page)


def test_cell_task_is_picklable():
    task = CellTask("rubis", int(PatternLevel.CENTRALIZED), FAST, 21)
    copy = pickle.loads(pickle.dumps(task))
    assert copy == task


def test_run_cells_rejects_duplicate_cells():
    with pytest.raises(ValueError):
        run_cells(
            [("rubis", PatternLevel.CENTRALIZED), ("rubis", 1)],
            workload=FAST,
            jobs=1,
        )


def test_run_cells_spans_applications():
    results = run_cells(
        [("rubis", PatternLevel.CENTRALIZED), ("petstore", PatternLevel.CENTRALIZED)],
        workload=FAST,
        seed=21,
        jobs=2,
    )
    assert list(results) == [
        ("petstore", PatternLevel.CENTRALIZED),
        ("rubis", PatternLevel.CENTRALIZED),
    ]
    for result in results.values():
        assert result.total_requests > 0


def test_with_trace_ships_summary_not_records():
    results = run_cells(
        [("rubis", PatternLevel.REMOTE_FACADE)],
        workload=FAST,
        seed=21,
        with_trace=True,
        jobs=1,
    )
    summary = results[("rubis", PatternLevel.REMOTE_FACADE)].trace_summary
    assert summary is not None
    assert summary.records > 0
    assert sum(summary.by_kind.values()) == summary.records
    # Edge-to-main RMI crosses the WAN at the façade level.
    assert summary.wide_area_calls("rmi") > 0


def test_default_jobs_positive():
    assert default_jobs() >= 1


# ---------------------------------------------------------------------------
# Progress reporting
# ---------------------------------------------------------------------------


def test_progress_reporter_counts_and_prints():
    stream = io.StringIO()
    progress = ProgressReporter(2, stream=stream, label="cells")
    progress.cell_done("rubis", PatternLevel.CENTRALIZED, 1.25)
    assert not progress.finished
    progress.done("ablate_stub_caching", 0.5)
    assert progress.finished
    lines = stream.getvalue().strip().splitlines()
    assert lines[0].startswith("[1/2 cells] rubis level 1 done in 1.2")
    assert "[2/2 cells] ablate_stub_caching" in lines[1]


def test_run_series_reports_progress_in_both_modes():
    for jobs in (1, 2):
        stream = io.StringIO()
        progress = ProgressReporter(len(LEVELS), stream=stream)
        run_series_parallel(
            "rubis",
            levels=LEVELS,
            workload=FAST,
            seed=21,
            jobs=jobs,
            progress=progress,
        )
        assert progress.completed == len(LEVELS)
        assert stream.getvalue().count("done in") == len(LEVELS)
