"""Tests for generalized topologies and explicit placement policies.

The refactor's contract: an experiment cell is (application, policy,
topology), with pattern levels surviving only as canned policies.  These
tests pin the new degrees of freedom — arbitrary edge counts, custom
policy files, topology knobs — and the determinism bar they must clear
(serial vs. worker-pool byte-identity, exactly as for the canned grid).
"""

import pickle
from pathlib import Path

import pytest

from repro.core.patterns import PatternLevel
from repro.core.policy import load_policy
from repro.experiments import calibration
from repro.experiments.__main__ import main
from repro.experiments.parallel import CellTask, run_cells
from repro.experiments.runner import run_configuration, run_series
from repro.experiments.tables import build_table, render_table, table_to_csv
from repro.faults import scenarios
from repro.faults.report import (
    availability_to_json,
    build_availability_table,
    render_availability_table,
)
from repro.simnet.topology import TopologyOverrides

FAST = calibration.default_workload(duration_ms=20_000.0, warmup_ms=5_000.0)
POLICY_FILE = Path(__file__).resolve().parents[2] / "policies" / "replicas-one-edge.json"


@pytest.fixture(scope="module")
def custom_policy():
    return load_policy(str(POLICY_FILE))


@pytest.fixture(scope="module")
def policy_serial(custom_policy):
    return run_series("petstore", workload=FAST, seed=21, jobs=1, policy=custom_policy)


# ---------------------------------------------------------------------------
# Topology overrides: any edge count, WAN knobs, recorded in results
# ---------------------------------------------------------------------------


def test_topology_overrides_empty_and_apply():
    assert TopologyOverrides().empty
    overrides = TopologyOverrides(edges=4, wan_latency=250.0)
    assert not overrides.empty
    config = calibration.petstore_testbed_config()
    patched = overrides.apply(config)
    assert patched.edge_servers == 4
    assert patched.wan_latency == 250.0
    assert patched.clients_per_group == config.clients_per_group


@pytest.mark.parametrize("edges", [1, 4])
def test_smoke_run_at_nondefault_edge_count(edges):
    result = run_configuration(
        "petstore",
        PatternLevel.REMOTE_FACADE,
        workload=FAST,
        seed=21,
        topology=TopologyOverrides(edges=edges),
    )
    assert result.topology["edge_servers"] == edges
    assert len(result.system.edges) == edges
    assert result.generator.total_requests() > 0
    # Every client node resolves an entry server on the actual testbed.
    names = {server.name for server in result.system.edges} | {
        result.system.main.name
    }
    for client in result.generator.clients:
        assert result.system.entry_server_for(client.client_node).name in names


def test_default_topology_recorded_on_result():
    result = run_configuration(
        "petstore", PatternLevel.CENTRALIZED, workload=FAST, seed=21
    )
    config = calibration.petstore_testbed_config()
    assert result.topology == {
        "edge_servers": config.edge_servers,
        "wan_latency_ms": config.wan_latency,
        "clients_per_group": config.clients_per_group,
    }
    assert result.label is None


def test_topology_threads_through_worker_pool():
    overrides = TopologyOverrides(edges=1)
    results = run_cells(
        [("petstore", PatternLevel.CENTRALIZED), ("petstore", PatternLevel.REMOTE_FACADE)],
        workload=FAST,
        seed=21,
        jobs=2,
        topology=overrides,
    )
    for result in results.values():
        assert result.topology["edge_servers"] == 1


# ---------------------------------------------------------------------------
# Custom policies: labelled results, serial-vs-pool byte-identity
# ---------------------------------------------------------------------------


def test_policy_series_is_labelled(policy_serial, custom_policy):
    level = custom_policy.effective_level()
    assert list(policy_serial) == [level]
    result = policy_serial[level]
    assert result.label == "replicas-one-edge"
    assert result.topology is not None


def test_policy_serial_vs_pool_byte_identical(policy_serial, custom_policy):
    parallel = run_series(
        "petstore", workload=FAST, seed=21, jobs=2, policy=custom_policy
    )
    serial_table = build_table(policy_serial)
    parallel_table = build_table(parallel)
    assert render_table(serial_table) == render_table(parallel_table)
    assert table_to_csv(serial_table) == table_to_csv(parallel_table)


def test_policy_label_reaches_rendered_table(policy_serial):
    table = build_table(policy_serial)
    rendered = render_table(table)
    assert "replicas-one-edge" in rendered


def test_policy_label_and_topology_reach_availability_artifact(policy_serial):
    table = build_availability_table("petstore", policy_serial, scenario="none")
    assert "replicas-one-edge" in render_availability_table(table)
    payload = availability_to_json([table])
    assert '"labels"' in payload
    assert '"topology"' in payload


def test_cell_task_pickles_with_policy_and_topology(custom_policy):
    task = CellTask(
        "petstore",
        int(custom_policy.effective_level()),
        FAST,
        21,
        policy=custom_policy,
        topology=TopologyOverrides(edges=3, wan_latency=80.0),
    )
    copy = pickle.loads(pickle.dumps(task))
    assert copy == task
    assert copy.policy.to_json() == custom_policy.to_json()
    assert copy.topology.edges == 3


# ---------------------------------------------------------------------------
# Fault scenarios follow the testbed's actual edge servers
# ---------------------------------------------------------------------------


def test_scenarios_default_to_paper_edges():
    schedule = scenarios.scenario("edge-partition", 60_000.0, 10_000.0)
    assert schedule.partitions[0].b == "edge1"


def test_scenarios_target_first_actual_edge():
    schedule = scenarios.scenario(
        "edge-crash", 60_000.0, 10_000.0, edges=("edgeA", "edgeB", "edgeC")
    )
    assert schedule.crashes[0].server == "edgeA"


def test_flaky_wan_covers_every_edge():
    edges = tuple(f"edge{i}" for i in range(1, 5))
    schedule = scenarios.scenario("flaky-wan", 60_000.0, 10_000.0, edges=edges)
    assert {window.b for window in schedule.loss_windows} == set(edges)


def test_single_edge_testbed_is_supported():
    schedule = scenarios.scenario(
        "edge-partition", 60_000.0, 10_000.0, edges=("edge1",)
    )
    assert schedule.partitions[0].b == "edge1"


def test_scenarios_reject_empty_edge_list():
    with pytest.raises(ValueError):
        scenarios.scenario("edge-crash", 60_000.0, 10_000.0, edges=())


# ---------------------------------------------------------------------------
# The `plan` target: resolve and print without simulating
# ---------------------------------------------------------------------------


def test_plan_target_canned_level(capsys):
    code = main(["plan", "--app", "petstore", "--level", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "== petstore · policy 'level-3' ==" in out
    assert "resolved policy:" in out
    assert "PASS" in out


def test_plan_target_policy_file(capsys):
    code = main(
        [
            "plan",
            "--app",
            "petstore",
            "--policy",
            str(POLICY_FILE),
            "--edges",
            "3",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "policy 'replicas-one-edge'" in out
    assert "PASS" in out


def test_plan_target_policy_requires_app(capsys):
    code = main(["plan", "--policy", str(POLICY_FILE)])
    captured = capsys.readouterr()
    assert code == 2
    assert "--app" in captured.err


def test_cli_rejects_nonpositive_edges(capsys):
    code = main(["plan", "--app", "petstore", "--level", "1", "--edges", "0"])
    assert code == 2
