"""Level 6 is opt-in: the published levels 1–5 artifacts are untouched.

The consistency-substrate refactor rebuilt the plumbing under levels
3–5 (query caching, replicas, update propagation), so the regression
contract is strict: default sweeps still cover exactly the paper's five
configurations, levels 1–5 emit no method-cache sections or counters in
any artifact, and sweeps that do include level 6 stay byte-identical
between serial and worker-pool execution like every other level.
"""

import pytest

from repro.core.patterns import PAPER_LEVELS, PatternLevel
from repro.experiments import calibration
from repro.experiments.figures import build_figure, figure_to_csv, render_figure
from repro.experiments.runner import run_configuration, run_series
from repro.experiments.tables import build_table, render_table, table_to_csv

FAST = calibration.default_workload(duration_ms=20_000.0, warmup_ms=5_000.0)
QUICK = calibration.default_workload(duration_ms=6_000.0, warmup_ms=1_000.0)
LEVELS = [PatternLevel.ASYNC_UPDATES, PatternLevel.METHOD_CACHING]


def test_paper_levels_stop_at_async_updates():
    assert PAPER_LEVELS == tuple(PatternLevel)[:5]
    assert PatternLevel.METHOD_CACHING not in PAPER_LEVELS


def test_default_series_sweeps_paper_levels_only():
    series = run_series("petstore", workload=QUICK, seed=31)
    assert list(series) == list(PAPER_LEVELS)


@pytest.mark.parametrize("level", list(PAPER_LEVELS))
def test_paper_levels_emit_no_method_cache_artifacts(level):
    result = run_configuration(
        "rubis", level, workload=QUICK, seed=31, with_metrics=True
    )
    # No server grew a cache, so no section appears in the snapshot...
    for server in result.system.servers.values():
        assert getattr(server, "method_cache", None) is None
    assert "method_cache" not in result.cache_stats
    # ...no counter appears in the registry...
    assert not any(
        name.startswith("methodcache.") for name in result.metrics.to_state()
    )
    # ...and the resilience snapshot keeps its pre-refactor key set.
    assert "method_cache" not in result.resilience


@pytest.fixture(scope="module")
def serial_series():
    return run_series("rubis", levels=LEVELS, workload=FAST, seed=21, jobs=1)


@pytest.fixture(scope="module")
def parallel_series():
    return run_series("rubis", levels=LEVELS, workload=FAST, seed=21, jobs=2)


def test_level6_serial_vs_pool_monitors_identical(serial_series, parallel_series):
    for level in LEVELS:
        assert (
            serial_series[level].monitor.table()
            == parallel_series[level].monitor.table()
        ), level


def test_level6_serial_vs_pool_artifacts_byte_identical(
    serial_series, parallel_series
):
    serial_table = build_table(serial_series)
    parallel_table = build_table(parallel_series)
    assert render_table(serial_table) == render_table(parallel_table)
    assert table_to_csv(serial_table) == table_to_csv(parallel_table)
    serial_figure = build_figure(serial_series)
    parallel_figure = build_figure(parallel_series)
    assert render_figure(serial_figure) == render_figure(parallel_figure)
    assert figure_to_csv(serial_figure) == figure_to_csv(parallel_figure)


def test_level6_cache_stats_survive_the_worker_pool(serial_series, parallel_series):
    serial = serial_series[PatternLevel.METHOD_CACHING].cache_stats
    parallel = parallel_series[PatternLevel.METHOD_CACHING].cache_stats
    assert "method_cache" in serial
    assert serial["method_cache"] == parallel["method_cache"]
    # Level 5's stats stay free of the new section in both modes.
    assert "method_cache" not in serial_series[PatternLevel.ASYNC_UPDATES].cache_stats
    assert (
        "method_cache"
        not in parallel_series[PatternLevel.ASYNC_UPDATES].cache_stats
    )
