"""Tests for the experiment harness: runner, tables, figures, probes, CLI."""

import pytest

from repro.core.patterns import PatternLevel
from repro.experiments import calibration
from repro.experiments.figures import build_figure, render_figure
from repro.experiments.probes import PageProbe, ProbeResult, measure_pages
from repro.experiments.runner import APPS, run_configuration, run_series
from repro.experiments.tables import build_table, render_table

FAST = calibration.default_workload(duration_ms=30_000.0, warmup_ms=8_000.0)


@pytest.fixture(scope="module")
def small_series():
    return run_series(
        "rubis",
        levels=[PatternLevel.CENTRALIZED, PatternLevel.QUERY_CACHING],
        workload=FAST,
        seed=55,
    )


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------


def test_app_specs_complete():
    assert set(APPS) == {"petstore", "rubis"}
    for spec in APPS.values():
        assert spec.browser_pages and spec.writer_pages
        assert spec.warm_queries is not None


def test_petstore_profile_is_heavier_than_rubis():
    """"RUBiS is significantly lighter weight" — the profiles encode it."""
    petstore, rubis = calibration.PETSTORE_COSTS, calibration.RUBIS_COSTS
    assert petstore.servlet_base > rubis.servlet_base
    assert petstore.servlet_io_wait > rubis.servlet_io_wait
    assert petstore.rmi_dgc_fraction > rubis.rmi_dgc_fraction  # JBoss 2.4 vs 3.0


def test_baseline_modifications_are_applied():
    """§3.4: the paper's baseline removed two entity-lifecycle costs."""
    for costs in (calibration.PETSTORE_COSTS, calibration.RUBIS_COSTS):
        assert costs.store_on_read_only_tx is False
        assert costs.bmp_find_extra_db_call is False
    assert calibration.RUBIS_COSTS.finder_loads_rows is True   # CMP 2.0
    assert calibration.PETSTORE_COSTS.finder_loads_rows is False  # BMP


def test_rubis_database_colocated_with_main():
    assert calibration.rubis_testbed_config().db_colocated is True
    assert calibration.petstore_testbed_config().db_colocated is False


def test_workload_defaults_match_paper():
    workload = calibration.default_workload()
    assert workload.total_rate_per_s == 30.0
    assert workload.browser_fraction == 0.8


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def test_run_configuration_returns_complete_result(small_series):
    result = small_series[PatternLevel.CENTRALIZED]
    assert result.app == "rubis"
    assert result.level == PatternLevel.CENTRALIZED
    assert set(result.groups()) == {
        "local-browser", "local-bidder", "remote-browser", "remote-bidder",
    }
    assert result.wall_seconds > 0
    assert result.generator.total_requests() > 0


def test_runner_is_deterministic():
    first = run_configuration("rubis", PatternLevel.REMOTE_FACADE, workload=FAST, seed=77)
    second = run_configuration("rubis", PatternLevel.REMOTE_FACADE, workload=FAST, seed=77)
    for group in first.groups():
        assert first.session_mean(group) == second.session_mean(group), group


def test_runner_seed_changes_results():
    first = run_configuration("rubis", PatternLevel.CENTRALIZED, workload=FAST, seed=1)
    second = run_configuration("rubis", PatternLevel.CENTRALIZED, workload=FAST, seed=2)
    assert any(
        first.session_mean(g) != second.session_mean(g) for g in first.groups()
    )


def test_cold_start_without_warm_replicas_is_slower():
    warm = run_configuration(
        "rubis", PatternLevel.STATEFUL_CACHING, workload=FAST, seed=88
    )
    cold = run_configuration(
        "rubis", PatternLevel.STATEFUL_CACHING, workload=FAST, seed=88,
        warm_replicas=False,
    )
    assert cold.mean("remote-browser", "Item") > warm.mean("remote-browser", "Item")


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def test_table_structure(small_series):
    table = build_table(small_series)
    assert table.app == "rubis"
    assert "Item" in table.pages and "Store Bid" in table.pages
    cell = table.get(PatternLevel.CENTRALIZED, "remote", "Item")
    assert cell is not None and cell.count > 0 and cell.mean > 0


def test_table_merges_browser_and_writer_observations(small_series):
    table = build_table(small_series)
    # Main is visited by both browsers and bidders; counts must combine.
    result = small_series[PatternLevel.CENTRALIZED]
    browser_n = result.monitor.page_stats("remote-browser", "Main").count
    bidder_n = result.monitor.page_stats("remote-bidder", "Main").count
    assert table.get(PatternLevel.CENTRALIZED, "remote", "Main").count == (
        browser_n + bidder_n
    )


def test_render_table_layout(small_series):
    text = render_table(build_table(small_series))
    assert "Table 7" in text
    assert "Local" in text and "Remote" in text
    assert "Centralized" in text and "Query caching" in text


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------


def test_figure_structure(small_series):
    figure = build_figure(small_series)
    assert figure.groups == [
        "local-browser", "local-bidder", "remote-browser", "remote-bidder",
    ]
    value = figure.value("remote-browser", PatternLevel.CENTRALIZED)
    assert value > 300.0


def test_render_figure_layout(small_series):
    text = render_figure(build_figure(small_series))
    assert "Figure 8" in text
    assert "|#" in text  # bars
    assert "remote-bidder" in text


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------


def test_probe_result_statistics():
    result = ProbeResult()
    for value in (10.0, 20.0, 30.0):
        result.add("P", value)
    assert result.mean("P") == 20.0
    assert result.mean("P", discard=1) == 25.0
    assert result.last("P") == 30.0
    assert result.pages() == ["P"]
    assert result.mean("missing") != result.mean("missing")  # NaN


def test_measure_pages_discards_cold_runs():
    from repro.core.patterns import PatternLevel
    from tests.helpers import tiny_system

    env, system = tiny_system(PatternLevel.STATEFUL_CACHING)
    system.warm_replicas()
    means = measure_pages(
        system, env, "client-main-0", [("Notes", {"note_id": 1})], repeats=3
    )
    assert means["Notes"] < 50.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_table7(capsys):
    from repro.experiments.__main__ import main

    code = main(["table7", "--duration", "20", "--warmup", "5", "--seed", "7"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Table 7" in output


def test_cli_rejects_unknown_target():
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["table99"])


# ---------------------------------------------------------------------------
# CSV exports
# ---------------------------------------------------------------------------


def test_table_to_csv(small_series):
    from repro.experiments.tables import table_to_csv

    csv_text = table_to_csv(build_table(small_series))
    lines = csv_text.strip().splitlines()
    assert lines[0] == "configuration,locality,page,mean_ms,samples"
    assert any(line.startswith("Centralized,remote,") for line in lines)
    # Every data line has exactly the five columns (page is quoted).
    for line in lines[1:]:
        assert line.count(",") >= 4


def test_figure_to_csv(small_series):
    from repro.experiments.figures import figure_to_csv

    csv_text = figure_to_csv(build_figure(small_series))
    lines = csv_text.strip().splitlines()
    assert lines[0] == "group,configuration,session_mean_ms"
    assert any(line.startswith("remote-bidder,Query caching,") for line in lines)


def test_cli_csv_mode(capsys):
    from repro.experiments.__main__ import main

    code = main(["figure8", "--duration", "15", "--warmup", "4", "--csv"])
    assert code == 0
    output = capsys.readouterr().out
    assert "group,configuration,session_mean_ms" in output
