"""Tests for cProfile instrumentation (repro.experiments.profile)."""

import io

import pytest

from repro.core.patterns import PatternLevel
from repro.experiments import calibration
from repro.experiments.profile import (
    _subsystem_of,
    dump_cell_profile,
    format_attribution,
    format_profile,
    profile_call,
    subsystem_attribution,
)
from repro.experiments.runner import run_series

TINY = calibration.default_workload(duration_ms=6_000.0, warmup_ms=1_000.0)


def test_profile_call_returns_result_and_stats():
    result, stats = profile_call(sorted, [3, 1, 2])
    assert result == [1, 2, 3]
    assert stats.stats  # at least the sorted() frame was observed


def test_profile_call_propagates_exceptions():
    with pytest.raises(ZeroDivisionError):
        profile_call(lambda: 1 / 0)


def test_subsystem_of_mapping():
    assert _subsystem_of("/x/src/repro/simnet/kernel.py") == "simnet"
    assert _subsystem_of("/x/src/repro/rdbms/executor.py") == "rdbms"
    assert _subsystem_of("/x/src/repro/experiments.py") == "experiments"
    assert _subsystem_of("<built-in>") == "interpreter"
    assert _subsystem_of("~") == "interpreter"
    assert _subsystem_of("/usr/lib/python3/heapq.py") == "stdlib"


def test_attribution_buckets_and_formatting():
    _result, stats = profile_call(sorted, list(range(100)))
    attribution = subsystem_attribution(stats)
    assert attribution  # something ran
    totals = [bucket["tottime"] for bucket in attribution.values()]
    assert totals == sorted(totals, reverse=True)
    text = format_attribution(attribution)
    assert "subsystem self-time attribution:" in text
    assert format_profile(stats, limit=3)


def test_dump_cell_profile_writes_header_and_attribution():
    _result, stats = profile_call(sorted, [2, 1])
    stream = io.StringIO()
    dump_cell_profile("petstore L1", stats, stream, limit=5)
    output = stream.getvalue()
    assert "== profile: petstore L1 ==" in output
    assert "subsystem self-time attribution:" in output


def test_run_series_profile_results_identical(capsys):
    """profile=True must change stderr output only, never the results."""
    levels = [PatternLevel.CENTRALIZED]
    plain = run_series("petstore", levels=levels, workload=TINY, seed=7)
    profiled = run_series(
        "petstore", levels=levels, workload=TINY, seed=7, profile=True
    )
    captured = capsys.readouterr()
    assert "== profile: petstore L1 ==" in captured.err
    assert captured.out == ""
    level = PatternLevel.CENTRALIZED
    assert profiled[level].monitor.session_mean("browser") == pytest.approx(
        plain[level].monitor.session_mean("browser")
    )
    for page in plain[level].monitor.pages("browser"):
        assert profiled[level].mean("browser", page) == plain[level].mean(
            "browser", page
        )


def test_run_series_profile_forces_serial_with_warning(capsys):
    """profile + jobs>1 downgrades to serial with an explicit warning."""
    levels = [PatternLevel.CENTRALIZED]
    results = run_series(
        "petstore", levels=levels, workload=TINY, seed=7, jobs=2, profile=True
    )
    captured = capsys.readouterr()
    assert "forcing jobs=1" in captured.err
    assert "requested 2" in captured.err
    # Serial path returns live ExperimentResult objects, not CellResult.
    from repro.experiments.runner import ExperimentResult

    assert isinstance(results[PatternLevel.CENTRALIZED], ExperimentResult)


def test_warn_forced_serial_message():
    from repro.experiments.profile import warn_forced_serial

    stream = io.StringIO()
    warn_forced_serial(4, stream)
    message = stream.getvalue()
    assert "cProfile cannot follow worker processes" in message
    assert "requested 4" in message
