"""Smoke tests: every shipped example runs to completion and prints its
headline output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script, *args, timeout=300):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_quickstart():
    output = _run("quickstart.py")
    assert "session-average response times" in output
    assert "design rules at level 4: PASS" in output
    assert "deployment plan" in output


def test_petstore_wan_study():
    output = _run("petstore_wan_study.py", "--duration", "30")
    assert "Table 6" in output
    assert "Figure 7" in output
    assert "faster than the centralized" in output


def test_rubis_consistency():
    output = _run("rubis_consistency.py")
    assert "level 3: Stateful component caching" in output
    assert "level 5: Asynchronous updates" in output
    # Zero staleness at level 3; the late read always converges at level 5.
    assert output.count("FRESH") >= 3


def test_mutable_redeployment():
    output = _run("mutable_redeployment.py")
    assert "adaptation actions taken:" in output
    assert "deployed facade of 'Catalog' on edge1" in output


def test_design_rule_audit():
    output = _run("design_rule_audit.py")
    assert "design rules at level 5: PASS" in output
    assert "[R1] RubisItem" in output
    assert "runtime enforcement: AccessError" in output
