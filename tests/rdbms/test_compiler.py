"""Compiled closures must reproduce the tree-walking evaluator exactly.

Every expression shape the SQL layer produces (Comparison over all
operators, And/Or/Not, InList, Like, Parameter, qualified and bare
ColumnRefs) is evaluated both ways over rows that include NULLs, missing
columns, and ambiguous qualified keys.  "Equivalent" includes raising
the same :class:`EvaluationError` with the same message — the executor's
join pass depends on those errors to defer predicates.
"""

import pytest

from repro.apps.petstore.schema import petstore_schemas
from repro.apps.rubis.schema import rubis_schemas
from repro.rdbms.compiler import (
    EMPTY_ROW,
    column_lookup,
    compile_expression,
    compiled,
)
from repro.rdbms.engine import Database
from repro.rdbms.expressions import (
    _OPERATORS,
    And,
    ColumnRef,
    Comparison,
    EvaluationError,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
    bind_parameters,
)
from repro.rdbms.sql import parse_cached

# Rows covering: empty, NULLs, qualified keys, bare/qualified aliasing,
# ambiguity, and plain data.
ROWS = [
    {},
    {"id": 1, "name": "fido", "price": 10.0, "qty": None},
    {"id": None, "name": None, "price": None, "qty": 0},
    {"id": 2, "name": "Rex", "price": 22.5, "qty": 3},
    {"id": 3, "name": "rex hound", "price": 5.0, "qty": 1},
    {"t.id": 5, "t.name": "lizard", "t.price": 7.5},
    {"a.id": 1, "b.id": 2},  # bare "id" is ambiguous here
    {"t.id": 7, "id": 9, "name": "direct"},  # bare key shadows qualified
]

_RAISED = "<<raised>>"


def _outcome(fn):
    try:
        return fn()
    except EvaluationError as exc:
        return (_RAISED, str(exc))


def assert_equivalent(expression, params=(), rows=ROWS):
    walker = bind_parameters(expression, params)
    run = compiled(expression)
    for row in rows:
        tree = _outcome(lambda: walker.evaluate(row))
        fast = _outcome(lambda: run(row, params))
        assert fast == tree, (expression, row, params, tree, fast)


# ---------------------------------------------------------------------------
# Comparison: every operator, NULLs on either side, parameters, columns
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("operator", sorted(_OPERATORS))
def test_every_operator_against_literal(operator):
    assert_equivalent(Comparison(ColumnRef("id"), operator, Literal(2)))


@pytest.mark.parametrize("operator", sorted(_OPERATORS))
def test_every_operator_against_parameter(operator):
    assert_equivalent(Comparison(ColumnRef("price"), operator, Parameter(0)), (10.0,))


@pytest.mark.parametrize("operator", sorted(_OPERATORS))
def test_every_operator_null_literal(operator):
    """NULL on either side collapses to False, never raises."""
    assert_equivalent(Comparison(ColumnRef("id"), operator, Literal(None)))
    assert_equivalent(Comparison(Literal(None), operator, ColumnRef("id")))


def test_comparison_column_to_column():
    assert_equivalent(Comparison(ColumnRef("id"), "<", ColumnRef("qty")))


def test_comparison_missing_column_raises_identically():
    assert_equivalent(Comparison(ColumnRef("nope"), "=", Literal(1)))
    # Right side must evaluate (and raise) even when the left is NULL.
    assert_equivalent(Comparison(Literal(None), "=", ColumnRef("nope")))


# ---------------------------------------------------------------------------
# And / Or / Not, including short-circuit order
# ---------------------------------------------------------------------------


def test_conjunction_disjunction_negation():
    ge = Comparison(ColumnRef("id"), ">=", Literal(1))
    lt = Comparison(ColumnRef("price"), "<", Parameter(0))
    assert_equivalent(And((ge, lt)), (20.0,))
    assert_equivalent(Or((ge, lt)), (20.0,))
    assert_equivalent(Not(ge))
    assert_equivalent(Not(And((ge, Not(lt)))), (20.0,))


def test_short_circuit_skips_raising_part():
    """A False left arm must suppress a missing column on the right."""
    boom = Comparison(ColumnRef("nope"), "=", Literal(1))
    false = Comparison(Literal(1), "=", Literal(2))
    true = Comparison(Literal(1), "=", Literal(1))
    assert_equivalent(And((false, boom)))  # short-circuits: False, no raise
    assert_equivalent(Or((true, boom)))  # short-circuits: True, no raise
    assert_equivalent(And((true, boom)))  # must reach boom and raise
    assert_equivalent(Or((false, boom)))  # must reach boom and raise


# ---------------------------------------------------------------------------
# InList: literal fold, NULL membership, parameter options, raising column
# ---------------------------------------------------------------------------


def test_in_list_of_literals():
    assert_equivalent(InList(ColumnRef("id"), (Literal(1), Literal(3), Literal(99))))


def test_in_list_null_option_matches_null_value():
    """The tree-walker's pairwise == treats NULL == NULL as a match."""
    assert_equivalent(InList(ColumnRef("qty"), (Literal(None), Literal(99))))


def test_in_list_with_parameter_options():
    expr = InList(ColumnRef("id"), (Parameter(0), Literal(2), Parameter(1)))
    assert_equivalent(expr, (1, 3))


def test_in_list_missing_column_raises():
    assert_equivalent(InList(ColumnRef("nope"), (Literal(1),)))


# ---------------------------------------------------------------------------
# Like: constant-folded needle, dynamic pattern, NULLs
# ---------------------------------------------------------------------------


def test_like_constant_pattern():
    assert_equivalent(Like(ColumnRef("name"), Literal("%Rex%")))
    assert_equivalent(Like(ColumnRef("name"), Literal("fido")))


def test_like_parameter_pattern():
    assert_equivalent(Like(ColumnRef("name"), Parameter(0)), ("%RE%",))
    assert_equivalent(Like(ColumnRef("name"), Parameter(0)), ("",))


def test_like_null_pattern_is_false():
    assert_equivalent(Like(ColumnRef("name"), Literal(None)))
    assert_equivalent(Like(ColumnRef("name"), Parameter(0)), (None,))


def test_like_non_string_value_stringified():
    assert_equivalent(Like(ColumnRef("id"), Literal("%2%")))


# ---------------------------------------------------------------------------
# Column reference resolution: qualified, bare, fallback, ambiguity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name",
    ["id", "name", "t.id", "t.name", "a.id", "b.id", "nope", "t.nope", "x.qty"],
)
def test_column_resolution_matches_tree_walker(name):
    assert_equivalent(ColumnRef(name))


def test_parameter_environment_binding():
    run = compiled(Comparison(Parameter(0), "=", Parameter(1)))
    assert run(EMPTY_ROW, (7, 7)) is True
    assert run(EMPTY_ROW, (7, 8)) is False
    # Same compiled closure, new params: no recompilation or tree rewrite.
    assert run(EMPTY_ROW, ("a", "a")) is True


# ---------------------------------------------------------------------------
# Memoization contracts and the unknown-node fallback
# ---------------------------------------------------------------------------


def test_compiled_is_memoized_per_object():
    expr = Comparison(ColumnRef("id"), "=", Literal(1))
    assert compiled(expr) is compiled(expr)


def test_column_lookup_is_shared_across_statements():
    assert column_lookup("list_price") is column_lookup("list_price")
    assert compile_expression(ColumnRef("list_price")) is column_lookup("list_price")


def test_unknown_node_falls_back_to_tree_walker():
    class Always42(Expression):
        def evaluate(self, row):
            return 42

    assert compile_expression(Always42())(EMPTY_ROW, ()) == 42


# ---------------------------------------------------------------------------
# End to end over both application schemas: executor results must equal a
# tree-walking filter of the full table.
# ---------------------------------------------------------------------------


@pytest.fixture
def petstore_db():
    db = Database("petstore")
    for schema in petstore_schemas():
        db.create_table(schema)
    for i in range(3):
        db.execute(
            "INSERT INTO category (id, name, description) VALUES (?, ?, ?)",
            (i, f"cat-{i}", f"category {i}"),
        )
    for i in range(6):
        db.execute(
            "INSERT INTO product (id, category_id, name, description) VALUES (?, ?, ?, ?)",
            (i, i % 3, f"product-{i}", "desc"),
        )
    for i in range(12):
        db.execute(
            "INSERT INTO item (id, product_id, name, list_price, unit_cost, description)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (i, i % 6, f"item {'fish' if i % 4 == 0 else i}", 10.0 + i, 5.0, "d"),
        )
    return db


@pytest.fixture
def rubis_db():
    db = Database("rubis")
    for schema in rubis_schemas():
        db.create_table(schema)
    db.execute("INSERT INTO regions (id, name) VALUES (?, ?)", (0, "east"))
    for i in range(2):
        db.execute("INSERT INTO categories (id, name) VALUES (?, ?)", (i, f"c{i}"))
    for i in range(4):
        db.execute(
            "INSERT INTO users (id, nickname, password, email, region_id)"
            " VALUES (?, ?, ?, ?, ?)",
            (i, f"user{i}", "pw", f"u{i}@x", 0),
        )
    for i in range(8):
        db.execute(
            "INSERT INTO items (id, name, description, initial_price, quantity,"
            " nb_of_bids, seller, category) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (i, f"item{i}", "d", 5.0 + i, 1, i % 3, i % 4, i % 2),
        )
    return db


def _assert_select_matches_tree_walk(db, table, sql, params):
    statement = parse_cached(sql)
    where = bind_parameters(statement.where, params)
    everything = db.execute(f"SELECT * FROM {table}").rows
    expected = [row for row in everything if where is None or where.evaluate(row)]
    assert db.execute(sql, params).rows == expected


@pytest.mark.parametrize(
    "table, sql, params",
    [
        ("product", "SELECT * FROM product WHERE category_id = ?", (1,)),
        ("item", "SELECT * FROM item WHERE name LIKE ?", ("%fish%",)),
        ("item", "SELECT * FROM item WHERE list_price > ? AND product_id = ?", (12.0, 2)),
        ("item", "SELECT * FROM item WHERE product_id = ? OR product_id = ?", (0, 5)),
        ("category", "SELECT * FROM category WHERE id = 99", ()),
    ],
)
def test_petstore_statements_match_tree_walker(petstore_db, table, sql, params):
    _assert_select_matches_tree_walk(petstore_db, table, sql, params)


@pytest.mark.parametrize(
    "table, sql, params",
    [
        ("items", "SELECT * FROM items WHERE category = ?", (1,)),
        ("items", "SELECT * FROM items WHERE seller = ? AND nb_of_bids >= ?", (2, 1)),
        ("items", "SELECT * FROM items WHERE reserve_price > ?", (0.0,)),  # all NULL
        ("users", "SELECT * FROM users WHERE nickname LIKE ?", ("%USER1%",)),
        ("users", "SELECT * FROM users WHERE region_id = ? AND id != ?", (0, 2)),
    ],
)
def test_rubis_statements_match_tree_walker(rubis_db, table, sql, params):
    _assert_select_matches_tree_walk(rubis_db, table, sql, params)
