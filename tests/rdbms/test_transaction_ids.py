"""Transaction ids are per-database, not process-global.

The original counter was a module-level ``itertools.count`` that no
reset path ever touched, so transaction ids depended on how many cells
had already run in the worker process — harmless for the golden tables
but a landmine for any artifact that ever prints an id, and a real
divergence between ``--jobs 1`` and ``--jobs N`` (workers recycle
processes at different cell boundaries).  Each ``Database`` now owns its
own counter.
"""

from repro.rdbms.engine import Database
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.transactions import Transaction
from repro.rdbms.types import INTEGER


def _db(name="txdb"):
    database = Database(name)
    database.create_table(
        TableSchema("t", [Column("id", INTEGER)], primary_key="id")
    )
    return database


def test_fresh_database_starts_at_one():
    assert _db().begin().id == 1


def test_ids_are_sequential_within_a_database():
    database = _db()
    ids = [database.begin(read_only=True).id for _ in range(3)]
    assert ids == [1, 2, 3]


def test_databases_do_not_share_a_counter():
    first = _db("a")
    for _ in range(5):
        first.begin()
    second = _db("b")
    assert second.begin().id == 1  # the old global counter would say 6


def test_rerunning_the_same_work_yields_the_same_ids():
    def run_once():
        database = _db()
        ids = []
        for value in range(1, 4):
            txn = database.begin()
            ids.append(txn.id)
            database.execute(
                "INSERT INTO t (id) VALUES (?)", (value,), transaction=txn
            )
            txn.commit()
        return ids

    assert run_once() == run_once()


def test_explicit_id_overrides_the_counter():
    txn = Transaction({}, id=99)
    assert txn.id == 99
