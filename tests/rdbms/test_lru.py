"""The shared LRU cache: eviction reporting and the secondary-index API.

The buffer-pool Executor ignores ``put``'s return value; the query and
method caches (which keep secondary indexes over their keys) rely on it
to unlink evicted entries — these tests pin that contract.
"""

from repro.rdbms.lru import LruCache


def test_put_returns_none_until_capacity_is_hit():
    cache = LruCache(2)
    assert cache.put("a", 1) is None
    assert cache.put("b", 2) is None
    assert len(cache) == 2


def test_put_returns_the_evicted_pair():
    cache = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    evicted = cache.put("c", 3)
    assert evicted == ("a", 1)
    assert cache.get("a") is None
    assert cache.get("b") == 2 and cache.get("c") == 3


def test_get_refreshes_recency_but_peek_does_not():
    cache = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.peek("a") == 1  # no recency refresh
    assert cache.put("c", 3) == ("a", 1)  # "a" still the LRU victim

    cache = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh
    assert cache.put("c", 3) == ("b", 2)  # now "b" is the victim


def test_overwrite_does_not_evict():
    cache = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.put("a", 10) is None
    assert cache.get("a") == 10
    assert len(cache) == 2


def test_pop_removes_and_returns():
    cache = LruCache(2)
    cache.put("a", 1)
    assert cache.pop("a") == 1
    assert cache.pop("a") is None
    assert cache.pop("missing") is None
    assert len(cache) == 0


def test_clear_and_keys():
    cache = LruCache(4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert list(cache.keys()) == ["a", "b"]
    cache.clear()
    assert len(cache) == 0
    assert list(cache.keys()) == []
