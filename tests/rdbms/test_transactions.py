"""Unit tests for transactions, undo, and the simulated lock manager."""

import pytest

from repro.rdbms.engine import Database, DatabaseError
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.transactions import LockManager, Transaction, TransactionError
from repro.rdbms.types import INTEGER, TEXT


@pytest.fixture
def db():
    database = Database("txtest")
    database.create_table(
        TableSchema(
            "accounts",
            [Column("id", INTEGER), Column("owner", TEXT), Column("balance", INTEGER)],
            primary_key="id",
        )
    )
    for i in range(3):
        database.execute(
            "INSERT INTO accounts (id, owner, balance) VALUES (?, ?, ?)",
            (i, f"owner{i}", 100),
        )
    return database


# ---------------------------------------------------------------------------
# Undo-log transactions
# ---------------------------------------------------------------------------


def test_rollback_reverts_update(db):
    tx = db.begin()
    db.execute("UPDATE accounts SET balance = 0 WHERE id = 1", transaction=tx)
    tx.rollback()
    assert db.execute("SELECT balance FROM accounts WHERE id = 1").scalar() == 100


def test_rollback_reverts_insert(db):
    tx = db.begin()
    db.execute(
        "INSERT INTO accounts (id, owner, balance) VALUES (9, 'new', 1)", transaction=tx
    )
    tx.rollback()
    assert db.execute("SELECT COUNT(*) AS n FROM accounts WHERE id = 9").scalar() == 0


def test_rollback_reverts_delete(db):
    tx = db.begin()
    db.execute("DELETE FROM accounts WHERE id = 2", transaction=tx)
    tx.rollback()
    assert db.execute("SELECT owner FROM accounts WHERE id = 2").scalar() == "owner2"


def test_rollback_reverts_in_reverse_order(db):
    tx = db.begin()
    db.execute("UPDATE accounts SET balance = 1 WHERE id = 0", transaction=tx)
    db.execute("UPDATE accounts SET balance = 2 WHERE id = 0", transaction=tx)
    db.execute("DELETE FROM accounts WHERE id = 0", transaction=tx)
    tx.rollback()
    assert db.execute("SELECT balance FROM accounts WHERE id = 0").scalar() == 100


def test_commit_makes_changes_durable(db):
    tx = db.begin()
    db.execute("UPDATE accounts SET balance = 42 WHERE id = 1", transaction=tx)
    tx.commit()
    assert db.execute("SELECT balance FROM accounts WHERE id = 1").scalar() == 42


def test_double_commit_rejected(db):
    tx = db.begin()
    tx.commit()
    with pytest.raises(TransactionError):
        tx.commit()


def test_rollback_after_commit_rejected(db):
    tx = db.begin()
    tx.commit()
    with pytest.raises(TransactionError):
        tx.rollback()


def test_read_only_transaction_rejects_writes(db):
    tx = db.begin(read_only=True)
    with pytest.raises(DatabaseError):
        db.execute("UPDATE accounts SET balance = 0 WHERE id = 1", transaction=tx)


# ---------------------------------------------------------------------------
# Lock manager (simulated-time blocking)
# ---------------------------------------------------------------------------


def test_lock_acquire_uncontended_is_instant(env, db):
    locks = LockManager(env)
    tx = db.begin()

    def proc():
        yield from locks.acquire(tx, "accounts", 1)
        return env.now

    process = env.process(proc())
    env.run()
    assert process.value == 0.0
    assert locks.holder("accounts", 1) == tx.id


def test_lock_is_reentrant(env, db):
    locks = LockManager(env)
    tx = db.begin()

    def proc():
        yield from locks.acquire(tx, "accounts", 1)
        yield from locks.acquire(tx, "accounts", 1)
        return True

    process = env.process(proc())
    env.run()
    assert process.value is True


def test_conflicting_lock_blocks_until_release(env, db):
    locks = LockManager(env)
    tx_a, tx_b = db.begin(), db.begin()
    log = []

    def holder(env):
        yield from locks.acquire(tx_a, "accounts", 1)
        yield env.timeout(50.0)
        locks.release_all(tx_a)

    def waiter(env):
        yield env.timeout(1.0)
        yield from locks.acquire(tx_b, "accounts", 1)
        log.append(env.now)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert log == [50.0]
    assert locks.waits == 1


def test_disjoint_keys_do_not_conflict(env, db):
    locks = LockManager(env)
    tx_a, tx_b = db.begin(), db.begin()
    log = []

    def proc(tx, key):
        yield from locks.acquire(tx, "accounts", key)
        log.append((env.now, key))

    env.process(proc(tx_a, 1))
    env.process(proc(tx_b, 2))
    env.run()
    assert log == [(0.0, 1), (0.0, 2)]


def test_lock_wait_timeout(env, db):
    locks = LockManager(env, timeout_ms=10.0)
    tx_a, tx_b = db.begin(), db.begin()
    outcome = {}

    def holder(env):
        yield from locks.acquire(tx_a, "accounts", 1)
        yield env.timeout(1000.0)  # never releases in time

    def waiter(env):
        try:
            yield from locks.acquire(tx_b, "accounts", 1)
        except TransactionError:
            outcome["timed_out_at"] = env.now

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert outcome["timed_out_at"] == pytest.approx(10.0)
    assert locks.timeouts == 1


def test_release_wakes_fifo_waiter(env, db):
    locks = LockManager(env)
    transactions = [db.begin() for _ in range(3)]
    order = []

    def proc(env, tx, name, start):
        yield env.timeout(start)
        yield from locks.acquire(tx, "accounts", 1)
        order.append(name)
        yield env.timeout(5.0)
        locks.release_all(tx)

    for index, tx in enumerate(transactions):
        env.process(proc(env, tx, f"tx{index}", float(index)))
    env.run()
    assert order == ["tx0", "tx1", "tx2"]
