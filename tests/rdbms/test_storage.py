"""Unit tests for table storage and index maintenance."""

import pytest

from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.storage import StorageError, Table
from repro.rdbms.types import INTEGER, TEXT


@pytest.fixture
def table():
    schema = TableSchema(
        "people",
        [Column("id", INTEGER), Column("name", TEXT), Column("city", TEXT)],
        primary_key="id",
        indexes=["city"],
    )
    return Table(schema)


def test_insert_and_get(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    assert table.get(1) == {"id": 1, "name": "ann", "city": "nyc"}
    assert len(table) == 1
    assert 1 in table


def test_get_returns_copy(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    row = table.get(1)
    row["name"] = "mutated"
    assert table.get(1)["name"] == "ann"


def test_duplicate_primary_key_rejected(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    with pytest.raises(StorageError):
        table.insert({"id": 1, "name": "bob", "city": "sf"})


def test_null_primary_key_rejected():
    schema = TableSchema(
        "t", [Column("id", INTEGER, nullable=True)], primary_key="id"
    )
    with pytest.raises(StorageError):
        Table(schema).insert({"id": None})


def test_index_lookup(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    table.insert({"id": 2, "name": "bob", "city": "nyc"})
    table.insert({"id": 3, "name": "eve", "city": "sf"})
    rows = table.index_lookup("city", "nyc")
    assert {row["id"] for row in rows} == {1, 2}


def test_index_lookup_on_primary_key(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    assert table.index_lookup("id", 1)[0]["name"] == "ann"
    assert table.index_lookup("id", 99) == []


def test_index_lookup_unindexed_column_rejected(table):
    with pytest.raises(StorageError):
        table.index_lookup("name", "ann")


def test_has_index(table):
    assert table.has_index("id")
    assert table.has_index("city")
    assert not table.has_index("name")


def test_update_maintains_indexes(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    before = table.update(1, {"city": "sf"})
    assert before["city"] == "nyc"
    assert table.index_lookup("city", "nyc") == []
    assert table.index_lookup("city", "sf")[0]["id"] == 1


def test_update_missing_row_rejected(table):
    with pytest.raises(StorageError):
        table.update(42, {"name": "x"})


def test_primary_key_update_rejected(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    with pytest.raises(StorageError):
        table.update(1, {"id": 2})


def test_delete_removes_row_and_index_entries(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    deleted = table.delete(1)
    assert deleted["name"] == "ann"
    assert table.get(1) is None
    assert table.index_lookup("city", "nyc") == []


def test_delete_missing_rejected(table):
    with pytest.raises(StorageError):
        table.delete(42)


def test_restore_after_delete(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    image = table.delete(1)
    table.restore(image)
    assert table.get(1) == image
    assert table.index_lookup("city", "nyc")[0]["id"] == 1


def test_restore_after_update_reverts_in_place(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    before = table.update(1, {"city": "sf", "name": "ann2"})
    table.restore(before)
    assert table.get(1) == before
    assert table.index_lookup("city", "sf") == []


def test_scan_iterates_copies(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    for row in table.scan():
        row["name"] = "mutated"
    assert table.get(1)["name"] == "ann"


def test_index_lookup_miss_never_grows_index(table):
    """Regression: probing an absent value used to insert an empty set.

    The secondary indexes were plain ``defaultdict(set)``, so every missed
    lookup materialized an empty bucket and the index grew monotonically
    with the *probe* workload instead of the data.
    """
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    assert len(table._indexes["city"]) == 1
    for probe in ["sf", "boston", None, 42, "nyc2"]:
        assert table.index_lookup("city", probe) == []
    assert len(table._indexes["city"]) == 1
    assert list(table._indexes["city"]) == ["nyc"]
    # Primary-key misses must not create rows either.
    assert table.index_lookup("id", 99) == []
    assert len(table) == 1


def test_index_lookup_copy_false_returns_live_rows(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    live = table.index_lookup("city", "nyc", copy=False)[0]
    assert live is table._rows[1]
    copied = table.index_lookup("city", "nyc")[0]
    assert copied is not live
    copied["name"] = "mutated"
    assert table.get(1)["name"] == "ann"
    live_pk = table.index_lookup("id", 1, copy=False)[0]
    assert live_pk is table._rows[1]


def test_scan_copy_false_yields_live_rows(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    table.insert({"id": 2, "name": "bob", "city": "sf"})
    live = list(table.scan(copy=False))
    assert [row is table._rows[row["id"]] for row in live] == [True, True]
    # Default scan still hands out independent copies.
    for row in table.scan():
        assert row is not table._rows[row["id"]]


def test_index_lookup_mixed_key_types_stable_order(table):
    schema = TableSchema(
        "mixed",
        [Column("id", TEXT), Column("city", TEXT)],
        primary_key="id",
        indexes=["city"],
    )
    mixed = Table(schema)
    mixed.insert({"id": "a", "city": "nyc"})
    mixed.insert({"id": "b", "city": "nyc"})
    rows = mixed.index_lookup("city", "nyc")
    assert [row["id"] for row in rows] == ["a", "b"]


def test_truncate_and_bulk_load(table):
    count = table.bulk_load(
        {"id": i, "name": f"p{i}", "city": "nyc"} for i in range(5)
    )
    assert count == 5
    table.truncate()
    assert len(table) == 0
    assert table.index_lookup("city", "nyc") == []


# ---------------------------------------------------------------------------
# Empty-bucket pruning (delete/update must not leave index garbage)
# ---------------------------------------------------------------------------


def test_delete_prunes_empty_hash_buckets(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    table.insert({"id": 2, "name": "bob", "city": "nyc"})
    table.delete(1)
    assert "nyc" in table._indexes["city"]  # bucket still has row 2
    table.delete(2)
    assert "nyc" not in table._indexes["city"]
    assert table.distinct_count("city") == 0


def test_update_prunes_empty_hash_buckets(table):
    table.insert({"id": 1, "name": "ann", "city": "nyc"})
    table.update(1, {"city": "sf"})
    assert "nyc" not in table._indexes["city"]
    assert table._indexes["city"]["sf"] == {1}
    assert table.distinct_count("city") == 1


def test_ordered_index_range_and_prefix_lookup(table):
    for i, city in enumerate(["Austin", "boston", "Boise", "chicago"]):
        table.insert({"id": i, "name": f"p{i}", "city": city})
    # TEXT ordered indexes are casefolded: prefix lookup is case-insensitive.
    rows = table.prefix_lookup("city", "BO")
    assert sorted(r["city"] for r in rows) == ["Boise", "boston"]
    # The INTEGER primary key serves ordered range probes.
    rows = table.range_lookup("id", 1, 2)
    assert [r["id"] for r in rows] == [1, 2]
    rows = table.range_lookup("id", 1, 3, lo_inclusive=False, hi_inclusive=False)
    assert [r["id"] for r in rows] == [2]


def test_column_min_max_tracks_mutations(table):
    assert table.column_min_max("id") is None
    for i in range(5):
        table.insert({"id": i, "name": f"p{i}", "city": "nyc"})
    assert table.column_min_max("id") == (0, 4)
    table.delete(4)
    assert table.column_min_max("id") == (0, 3)


def test_ordered_index_skips_null_values():
    schema = TableSchema(
        "n",
        [Column("id", INTEGER), Column("score", INTEGER, nullable=True)],
        primary_key="id",
        indexes=["score"],
    )
    t = Table(schema)
    t.insert({"id": 1, "score": None})
    t.insert({"id": 2, "score": 7})
    assert [r["id"] for r in t.range_lookup("score", 0, 10)] == [2]
    assert t.column_min_max("score") == (7, 7)
    t.delete(1)  # deleting the NULL row must not touch the tree
    assert t.column_min_max("score") == (7, 7)
