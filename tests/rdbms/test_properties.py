"""Property-based tests (hypothesis) for the relational engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdbms.engine import Database
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.types import INTEGER, TEXT

_settings = settings(max_examples=60, deadline=None)


def _make_db():
    database = Database("prop")
    database.create_table(
        TableSchema(
            "t",
            [Column("id", INTEGER), Column("grp", INTEGER), Column("txt", TEXT)],
            primary_key="id",
            indexes=["grp"],
        )
    )
    return database


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=5),
        st.text(alphabet="abcxyz ", max_size=12),
    ),
    max_size=40,
    unique_by=lambda r: r[0],
)


@given(rows=rows_strategy)
@_settings
def test_insert_select_roundtrip(rows):
    """Every inserted row is retrievable by primary key, unchanged."""
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    for row_id, grp, txt in rows:
        row = db.execute("SELECT * FROM t WHERE id = ?", (row_id,)).first()
        assert row == {"id": row_id, "grp": grp, "txt": txt}


@given(rows=rows_strategy, grp=st.integers(min_value=0, max_value=5))
@_settings
def test_index_scan_equivalence(rows, grp):
    """Index-accelerated equality returns exactly what a full scan would."""
    db = _make_db()
    for row_id, row_grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, row_grp, txt))
    indexed = db.execute("SELECT id FROM t WHERE grp = ?", (grp,))
    expected = sorted(r[0] for r in rows if r[1] == grp)
    assert sorted(indexed.column("id")) == expected
    assert indexed.used_index == "t.grp"


@given(rows=rows_strategy)
@_settings
def test_count_matches_inserts(rows):
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    assert db.execute("SELECT COUNT(*) AS n FROM t").scalar() == len(rows)


@given(
    rows=rows_strategy,
    operations=st.lists(
        st.tuples(
            st.sampled_from(["update", "delete", "insert"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=15,
    ),
)
@_settings
def test_rollback_restores_exact_state(rows, operations):
    """Any mix of mutations inside a transaction fully undoes on rollback."""
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    snapshot = sorted(
        (r["id"], r["grp"], r["txt"]) for r in db.execute("SELECT * FROM t").rows
    )
    tx = db.begin()
    existing = {r[0] for r in rows}
    inserted = set()
    for op, key in operations:
        try:
            if op == "update":
                db.execute("UPDATE t SET txt = 'mut' WHERE id = ?", (key,), transaction=tx)
            elif op == "delete":
                db.execute("DELETE FROM t WHERE id = ?", (key,), transaction=tx)
                existing.discard(key)
                inserted.discard(key)
            else:
                if key not in existing and key not in inserted:
                    db.execute(
                        "INSERT INTO t (id, grp, txt) VALUES (?, 0, 'new')",
                        (key,),
                        transaction=tx,
                    )
                    inserted.add(key)
        except Exception:
            raise
    tx.rollback()
    after = sorted(
        (r["id"], r["grp"], r["txt"]) for r in db.execute("SELECT * FROM t").rows
    )
    assert after == snapshot


@given(
    rows=rows_strategy,
    limit=st.integers(min_value=0, max_value=10),
)
@_settings
def test_order_by_limit_sorted_prefix(rows, limit):
    """ORDER BY + LIMIT returns the sorted prefix of the full result."""
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    limited = db.execute(f"SELECT id FROM t ORDER BY id LIMIT {limit}")
    expected = sorted(r[0] for r in rows)[:limit]
    assert limited.column("id") == expected


@given(needle=st.text(alphabet="abcxyz", min_size=1, max_size=4), rows=rows_strategy)
@_settings
def test_like_agrees_with_substring(needle, rows):
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    result = db.execute("SELECT id FROM t WHERE txt LIKE ?", (f"%{needle}%",))
    expected = sorted(r[0] for r in rows if needle.lower() in r[2].lower())
    assert sorted(result.column("id")) == expected


def _index_families_consistent(table):
    """Assert hash and ordered indexes exactly mirror the stored rows."""
    rows = table._rows
    for column, index in table._indexes.items():
        expected = {}
        for key, row in rows.items():
            expected.setdefault(row[column], set()).add(key)
        assert index == expected, f"hash index on {column} diverged"
        assert all(bucket for bucket in index.values()), "empty hash bucket"
    for column, tree in table._ordered.items():
        expected = {}
        for key, row in rows.items():
            value = row[column]
            if value is None:
                continue
            ordered_key = value.lower() if table._casefolded[column] else value
            expected.setdefault(ordered_key, set()).add(key)
        actual = {key: set(bucket) for key, bucket in tree.items()}
        assert actual == expected, f"ordered index on {column} diverged"
        assert len(tree) == len(expected)


@given(
    rows=rows_strategy,
    deletions=st.lists(st.integers(min_value=0, max_value=10_000), max_size=60),
)
@_settings
def test_delete_heavy_churn_leaves_no_empty_buckets(rows, deletions):
    """Deletes prune hash buckets and tree keys instead of leaving husks."""
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    table = db.table("t")
    live = {r[0] for r in rows}
    for key in deletions:
        if key in live:
            db.execute("DELETE FROM t WHERE id = ?", (key,))
            live.discard(key)
    _index_families_consistent(table)
    # Distinct counts (the planner's statistics) match the live data.
    assert table.distinct_count("grp") == len({r[1] for r in rows if r[0] in live})


@given(
    rows=rows_strategy,
    operations=st.lists(
        st.tuples(
            st.sampled_from(["update", "delete", "insert", "rollback_point"]),
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=25,
    ),
)
@_settings
def test_restore_rebuilds_hash_and_ordered_indexes(rows, operations):
    """After interleaved mutations + rollback, both index families match
    a freshly rebuilt table (``restore()`` maintains them together)."""
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    table = db.table("t")
    tx = db.begin()
    existing = {r[0] for r in rows}
    for op, key, grp in operations:
        if op == "update" and key in existing:
            db.execute(
                "UPDATE t SET grp = ?, txt = 'upd' WHERE id = ?",
                (grp, key),
                transaction=tx,
            )
        elif op == "delete" and key in existing:
            db.execute("DELETE FROM t WHERE id = ?", (key,), transaction=tx)
            existing.discard(key)
        elif op == "insert" and key not in existing:
            db.execute(
                "INSERT INTO t (id, grp, txt) VALUES (?, ?, 'new')",
                (key, grp),
                transaction=tx,
            )
            existing.add(key)
    tx.rollback()
    _index_families_consistent(table)
    # Ordered probes agree with predicate evaluation after the rollback.
    ranged = db.execute("SELECT id FROM t WHERE id >= ? AND id <= ?", (0, 5_000))
    expected = sorted(r[0] for r in rows if r[0] <= 5_000)
    assert sorted(ranged.column("id")) == expected


@given(rows=rows_strategy, lo=st.integers(min_value=0, max_value=10_000))
@_settings
def test_range_scan_equivalence(rows, lo):
    """Ordered-index range results equal what a full scan would produce,
    and the executor's counters record the planner's actual choice."""
    db = _make_db()
    for row_id, grp, txt in rows:
        db.execute("INSERT INTO t (id, grp, txt) VALUES (?, ?, ?)", (row_id, grp, txt))
    executor = db.executor
    before = (executor.index_scans, executor.full_scans, executor.range_scans)
    result = db.execute("SELECT id FROM t WHERE id >= ?", (lo,))
    expected = sorted(r[0] for r in rows if r[0] >= lo)
    assert sorted(result.column("id")) == expected
    chosen = result.plan.root.op
    after = (executor.index_scans, executor.full_scans, executor.range_scans)
    if chosen == "index-range":
        assert result.used_index == "t.id"
        assert after == (before[0] + 1, before[1], before[2] + 1)
    else:
        assert chosen == "full-scan" and result.used_index is None
        assert after == (before[0], before[1] + 1, before[2])
