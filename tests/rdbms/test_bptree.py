"""Unit and property tests for the ordered-index B+-tree."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdbms.bptree import BPlusTree

_settings = settings(max_examples=60, deadline=None)


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert not tree
    assert tree.get(1) is None
    assert tree.min_key() is None
    assert tree.max_key() is None
    assert list(tree.items()) == []


def test_add_and_get_buckets():
    tree = BPlusTree()
    tree.add(5, "a")
    tree.add(5, "b")
    tree.add(3, "c")
    assert len(tree) == 2  # distinct keys, not row keys
    assert tree.get(5) == {"a", "b"}
    assert tree.get(3) == {"c"}
    assert tree.min_key() == 3
    assert tree.max_key() == 5


def test_splits_preserve_order_and_lookups():
    tree = BPlusTree(order=4)
    keys = list(range(200))
    random.Random(7).shuffle(keys)
    for key in keys:
        tree.add(key, f"row{key}")
    assert len(tree) == 200
    assert tree.height > 1
    assert [k for k, _ in tree.items()] == list(range(200))
    for key in (0, 57, 199):
        assert tree.get(key) == {f"row{key}"}


def test_discard_prunes_empty_buckets():
    tree = BPlusTree(order=4)
    for key in range(50):
        tree.add(key, "x")
        tree.add(key, "y")
    tree.discard(10, "x")
    assert tree.get(10) == {"y"}
    tree.discard(10, "y")
    assert tree.get(10) is None
    assert len(tree) == 49
    assert [k for k, _ in tree.items()] == [k for k in range(50) if k != 10]


def test_lazy_deletion_keeps_scans_correct_over_empty_leaves():
    tree = BPlusTree(order=4)
    for key in range(100):
        tree.add(key, key)
    # Empty out a whole stretch of leaves, including the rightmost.
    for key in list(range(20, 60)) + list(range(90, 100)):
        tree.discard(key, key)
    assert len(tree) == 50
    assert [k for k, _ in tree.items()] == list(range(20)) + list(range(60, 90))
    assert tree.min_key() == 0
    assert tree.max_key() == 89  # rightmost leaf emptied; chain-walk fallback
    assert [k for k, _ in tree.range_items(15, 65)] == list(range(15, 20)) + list(
        range(60, 66)
    )


def test_range_items_bounds():
    tree = BPlusTree(order=4)
    for key in range(0, 20, 2):
        tree.add(key, key)
    assert [k for k, _ in tree.range_items(4, 10)] == [4, 6, 8, 10]
    assert [k for k, _ in tree.range_items(4, 10, lo_inclusive=False)] == [6, 8, 10]
    assert [k for k, _ in tree.range_items(4, 10, hi_inclusive=False)] == [4, 6, 8]
    assert [k for k, _ in tree.range_items(None, 4)] == [0, 2, 4]
    assert [k for k, _ in tree.range_items(14, None)] == [14, 16, 18]
    assert [k for k, _ in tree.range_items(5, 5)] == []


def test_prefix_items():
    tree = BPlusTree(order=4)
    for word in ["apple", "apricot", "banana", "appetite", "cherry", "app"]:
        tree.add(word, word)
    assert [k for k, _ in tree.prefix_items("app")] == ["app", "appetite", "apple"]
    assert [k for k, _ in tree.prefix_items("z")] == []


def test_clear():
    tree = BPlusTree(order=4)
    for key in range(30):
        tree.add(key, key)
    tree.clear()
    assert len(tree) == 0
    assert list(tree.items()) == []
    tree.add(1, "a")
    assert tree.get(1) == {"a"}


operations_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "discard"]),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
    ),
    max_size=200,
)


@given(operations=operations_strategy)
@_settings
def test_matches_dict_model(operations):
    """Interleaved adds/discards agree with a sorted-dict reference model."""
    tree = BPlusTree(order=4)
    model = {}
    for op, key, row_key in operations:
        if op == "add":
            tree.add(key, row_key)
            model.setdefault(key, set()).add(row_key)
        else:
            tree.discard(key, row_key)
            bucket = model.get(key)
            if bucket is not None:
                bucket.discard(row_key)
                if not bucket:
                    del model[key]
    assert len(tree) == len(model)
    assert [(k, b) for k, b in tree.items()] == sorted(model.items())
    expected_keys = sorted(model)
    assert tree.min_key() == (expected_keys[0] if expected_keys else None)
    assert tree.max_key() == (expected_keys[-1] if expected_keys else None)
    for key in range(31):
        assert tree.get(key) == model.get(key)
    in_range = [k for k in expected_keys if 8 <= k <= 22]
    assert [k for k, _ in tree.range_items(8, 22)] == in_range
