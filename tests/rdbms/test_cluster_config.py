"""The ``data_tier`` policy block: validation, JSON round trips, and the
absent-by-default contract (a policy without the block serializes exactly
as before, so canned policies stay byte-identical)."""

import json
from pathlib import Path

import pytest

from repro.core.policy import PlacementPolicy, load_policy
from repro.rdbms.cluster import DataTierError, DataTierPolicy

POLICY_DIR = Path(__file__).resolve().parents[2] / "policies"


def _tier(**overrides):
    base = dict(
        shard_count=3,
        shard_tables=(("bids", "item_id"), ("items", "id")),
        global_tables=("regions",),
        replication_factor=3,
        read_mode="stale-local",
    )
    base.update(overrides)
    return DataTierPolicy(**base)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def test_defaults_are_the_degenerate_single_instance():
    tier = DataTierPolicy()
    assert not tier.sharded
    assert not tier.replicated
    assert tier.quorum == 1
    assert tier.validation_errors() == []


def test_quorum_is_a_majority():
    assert _tier(replication_factor=3).quorum == 2
    assert _tier(replication_factor=5).quorum == 3
    assert _tier(replication_factor=4).quorum == 3


def test_shard_key_lookup():
    tier = _tier()
    assert tier.shard_key("items") == "id"
    assert tier.shard_key("bids") == "item_id"
    assert tier.shard_key("regions") is None
    assert tier.shard_key("never_heard_of_it") is None


@pytest.mark.parametrize(
    "overrides, fragment",
    [
        (dict(shard_count=0), "shard count"),
        (dict(replication_factor=0), "replication factor"),
        (dict(read_mode="eventual"), "read_mode"),
        (dict(strategy="round-robin"), "strategy"),
        (dict(strategy="range"), "split point"),
        (dict(shard_tables=(), shard_count=2), "no tables declare"),
        (dict(global_tables=("items",)), "both sharded and global"),
        (dict(heartbeat_ms=0.0), "heartbeat_ms"),
        (dict(election_timeout_ms=(2000.0, 1000.0)), "increasing"),
        (dict(election_timeout_ms=(50.0, 60.0)), "exceed the heartbeat"),
    ],
)
def test_contradictions_are_reported(overrides, fragment):
    errors = _tier(**overrides).validation_errors()
    assert any(fragment in error for error in errors), errors


def test_replication_factor_bounded_by_seat_count():
    tier = _tier(replication_factor=5)
    assert tier.validation_errors(seat_count=5) == []
    errors = tier.validation_errors(seat_count=3)
    assert any("seat" in error for error in errors)
    with pytest.raises(DataTierError):
        tier.validate(seat_count=3)


def test_range_strategy_needs_ascending_splits():
    tier = _tier(strategy="range", range_splits=(100, 200))
    assert tier.validation_errors() == []


# ---------------------------------------------------------------------------
# JSON round trips
# ---------------------------------------------------------------------------


def test_tier_json_round_trip():
    tier = _tier(heartbeat_ms=50.0, election_timeout_ms=(500.0, 900.0))
    assert DataTierPolicy.from_json(tier.to_json()) == tier


def test_tier_json_omits_defaults():
    payload = _tier().to_json()
    assert "heartbeat_ms" not in payload["replication"]
    assert "election_timeout_ms" not in payload["replication"]
    assert "strategy" not in payload["shards"]


def test_tier_json_rejects_unknown_keys():
    with pytest.raises(DataTierError):
        DataTierPolicy.from_json({"shards": {"count": 2}, "repl": {}})
    with pytest.raises(DataTierError):
        DataTierPolicy.from_json({"shards": {"count": 2, "via": "x"}})


def test_policy_without_data_tier_serializes_as_before():
    """The byte-identity contract: no block, no key, no difference."""
    policy = PlacementPolicy(name="plain", level=3)
    assert "data_tier" not in policy.to_json()
    assert PlacementPolicy.from_json(policy.to_json()).data_tier is None


def test_policy_with_data_tier_round_trips():
    policy = PlacementPolicy(name="clustered", level=3, data_tier=_tier())
    copy = PlacementPolicy.from_json(json.loads(policy.to_json_str()))
    assert copy.data_tier == policy.data_tier


def test_shipped_sharded_policy_loads_and_validates():
    policy = load_policy(str(POLICY_DIR / "sharded-replicated.json"))
    tier = policy.data_tier
    assert tier is not None
    assert tier.sharded and tier.replicated
    assert tier.shard_count == 3
    assert tier.replication_factor == 3
    assert tier.read_mode == "stale-local"
    assert tier.shard_key("items") == "id"
    # 3 replicas fit the paper's testbed (main seat + two edges).
    assert tier.validation_errors(seat_count=3) == []
