"""Unit tests for query planning and execution."""

import pytest

from repro.rdbms.engine import Database
from repro.rdbms.executor import ExecutionError
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.types import FLOAT, INTEGER, TEXT


@pytest.fixture
def db():
    database = Database("test")
    database.create_table(
        TableSchema(
            "items",
            [
                Column("id", INTEGER),
                Column("name", TEXT),
                Column("category", INTEGER),
                Column("price", FLOAT),
            ],
            primary_key="id",
            indexes=["category"],
        )
    )
    database.create_table(
        TableSchema(
            "cats",
            [Column("id", INTEGER), Column("label", TEXT)],
            primary_key="id",
        )
    )
    for i in range(30):
        database.execute(
            "INSERT INTO items (id, name, category, price) VALUES (?, ?, ?, ?)",
            (i, f"item-{i}", i % 3, 10.0 + i),
        )
    for i in range(3):
        database.execute("INSERT INTO cats (id, label) VALUES (?, ?)", (i, f"cat-{i}"))
    return database


def test_full_scan_when_unindexed(db):
    result = db.execute("SELECT * FROM items WHERE price > 35.0")
    assert result.used_index is None
    assert result.rows_scanned == 30
    assert all(row["price"] > 35.0 for row in result.rows)


def test_index_lookup_on_equality(db):
    result = db.execute("SELECT * FROM items WHERE category = ?", (1,))
    assert result.used_index == "items.category"
    assert result.rows_scanned == 10
    assert len(result.rows) == 10


def test_primary_key_lookup(db):
    result = db.execute("SELECT * FROM items WHERE id = 7")
    assert result.used_index == "items.id"
    assert result.first()["name"] == "item-7"


def test_index_plus_residual_filter(db):
    result = db.execute("SELECT * FROM items WHERE category = 1 AND price > 20.0")
    assert result.used_index == "items.category"
    assert all(row["price"] > 20.0 and row["category"] == 1 for row in result.rows)


def test_projection_and_aliases(db):
    result = db.execute("SELECT name AS label FROM items WHERE id = 3")
    assert result.columns == ["label"]
    assert result.rows == [{"label": "item-3"}]


def test_order_by_and_limit(db):
    result = db.execute("SELECT id FROM items ORDER BY price DESC LIMIT 3")
    assert result.column("id") == [29, 28, 27]


def test_order_by_ascending(db):
    result = db.execute("SELECT id FROM items ORDER BY price LIMIT 2")
    assert result.column("id") == [0, 1]


def test_aggregate_count_star(db):
    assert db.execute("SELECT COUNT(*) AS n FROM items").scalar() == 30


def test_aggregate_functions(db):
    result = db.execute(
        "SELECT COUNT(id) AS n, MAX(price) AS mx, MIN(price) AS mn, "
        "SUM(price) AS s, AVG(price) AS a FROM items WHERE category = 0"
    )
    row = result.first()
    assert row["n"] == 10
    assert row["mx"] == 37.0
    assert row["mn"] == 10.0
    assert row["s"] == pytest.approx(235.0)
    assert row["a"] == pytest.approx(23.5)


def test_aggregate_on_empty_set(db):
    result = db.execute("SELECT COUNT(*) AS n, MAX(price) AS mx FROM items WHERE id = 999")
    assert result.first() == {"n": 0, "mx": None}


def test_mixing_aggregates_and_columns_rejected(db):
    with pytest.raises(ExecutionError):
        db.execute("SELECT name, COUNT(*) FROM items")


def test_like_matching(db):
    result = db.execute("SELECT id FROM items WHERE name LIKE '%item-2%'")
    ids = set(result.column("id"))
    assert ids == {2, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29}


def test_join_with_qualified_columns(db):
    result = db.execute(
        "SELECT items.name, c.label FROM items JOIN cats c ON items.category = c.id "
        "WHERE c.label = 'cat-1' AND items.price < 15.0"
    )
    # category-1 items with price < 15.0: item-1 (11.0) and item-4 (14.0).
    assert result.rows == [
        {"items.name": "item-1", "c.label": "cat-1"},
        {"items.name": "item-4", "c.label": "cat-1"},
    ]


def test_join_row_count(db):
    result = db.execute("SELECT items.id FROM items JOIN cats c ON items.category = c.id")
    assert len(result.rows) == 30


def test_insert_affects_and_scans(db):
    result = db.execute(
        "INSERT INTO items (id, name, category, price) VALUES (99, 'new', 0, 1.0)"
    )
    assert result.affected == 1
    assert db.execute("SELECT name FROM items WHERE id = 99").scalar() == "new"


def test_update_by_index(db):
    result = db.execute("UPDATE items SET price = ? WHERE id = ?", (999.0, 3))
    assert result.affected == 1
    assert db.execute("SELECT price FROM items WHERE id = 3").scalar() == 999.0


def test_update_many_rows(db):
    result = db.execute("UPDATE items SET price = 0.0 WHERE category = 2")
    assert result.affected == 10


def test_delete(db):
    db.execute("DELETE FROM items WHERE id = 5")
    assert db.execute("SELECT COUNT(*) AS n FROM items WHERE id = 5").scalar() == 0


def test_parameter_count_mismatch_rejected(db):
    with pytest.raises(ExecutionError):
        db.execute("SELECT * FROM items WHERE id = ?", ())
    with pytest.raises(ExecutionError):
        db.execute("SELECT * FROM items WHERE id = ?", (1, 2))


def test_unknown_table_rejected(db):
    with pytest.raises(ExecutionError):
        db.execute("SELECT * FROM nope")


def test_scalar_requires_single_cell(db):
    with pytest.raises(ExecutionError):
        db.execute("SELECT * FROM items").scalar()


def test_in_list_predicate(db):
    result = db.execute("SELECT id FROM items WHERE id IN (1, 2, 3)")
    assert sorted(result.column("id")) == [1, 2, 3]


def test_null_comparisons_are_false():
    database = Database("nulls")
    database.create_table(
        TableSchema(
            "t",
            [Column("id", INTEGER), Column("v", INTEGER, nullable=True)],
            primary_key="id",
        )
    )
    database.execute("INSERT INTO t (id, v) VALUES (1, NULL)")
    assert len(database.execute("SELECT * FROM t WHERE v = NULL").rows) == 0
    assert len(database.execute("SELECT * FROM t WHERE v < 5").rows) == 0


# ---------------------------------------------------------------------------
# GROUP BY
# ---------------------------------------------------------------------------


def test_group_by_counts_per_group(db):
    result = db.execute(
        "SELECT category, COUNT(*) AS n FROM items GROUP BY category"
    )
    assert sorted((r["category"], r["n"]) for r in result.rows) == [
        (0, 10), (1, 10), (2, 10),
    ]


def test_group_by_multiple_aggregates(db):
    result = db.execute(
        "SELECT category, MAX(price) AS mx, AVG(price) AS avg_p FROM items "
        "WHERE price < 30.0 GROUP BY category"
    )
    for row in result.rows:
        assert row["mx"] < 30.0
        assert row["avg_p"] <= row["mx"]


def test_group_by_with_order_and_limit(db):
    result = db.execute(
        "SELECT category, SUM(price) AS total FROM items "
        "GROUP BY category ORDER BY total DESC LIMIT 1"
    )
    assert len(result.rows) == 1
    # Category 2 holds items 2,5,...,29: the highest prices.
    assert result.rows[0]["category"] == 2


def test_group_by_respects_where(db):
    result = db.execute(
        "SELECT category, COUNT(*) AS n FROM items WHERE id < 6 GROUP BY category"
    )
    assert sorted((r["category"], r["n"]) for r in result.rows) == [
        (0, 2), (1, 2), (2, 2),
    ]


def test_group_by_star_rejected(db):
    with pytest.raises(ExecutionError):
        db.execute("SELECT * FROM items GROUP BY category")


def test_group_by_order_by_alias(db):
    result = db.execute(
        "SELECT category AS cat, COUNT(*) AS n FROM items "
        "GROUP BY category ORDER BY cat DESC"
    )
    assert [r["cat"] for r in result.rows] == [2, 1, 0]


def test_group_by_order_by_raw_column_resolves_to_alias(db):
    # Regression: output rows are keyed by output names, so ORDER BY on the
    # *raw* source column of an aliased item used to see only missing keys
    # and silently keep input order.
    result = db.execute(
        "SELECT category AS cat, COUNT(*) AS n FROM items "
        "GROUP BY category ORDER BY category DESC"
    )
    assert [r["cat"] for r in result.rows] == [2, 1, 0]
    result = db.execute(
        "SELECT category AS cat, SUM(price) AS total FROM items "
        "GROUP BY category ORDER BY category"
    )
    assert [r["cat"] for r in result.rows] == [0, 1, 2]


def test_group_by_order_by_aliased_aggregate_raw_column(db):
    # ORDER BY names the aggregate's source column; it must resolve to the
    # aggregate's output alias.
    result = db.execute(
        "SELECT category, SUM(price) AS total FROM items "
        "GROUP BY category ORDER BY price DESC"
    )
    totals = [r["total"] for r in result.rows]
    assert totals == sorted(totals, reverse=True)
