"""Unit tests for the SQL lexer/parser."""

import pytest

from repro.rdbms.expressions import (
    And,
    ColumnRef,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
    Or,
    Parameter,
)
from repro.rdbms.sql import (
    Aggregate,
    Delete,
    Insert,
    Select,
    SelectItem,
    SqlError,
    Update,
    parse,
    parse_cached,
)


# ---------------------------------------------------------------------------
# SELECT
# ---------------------------------------------------------------------------


def test_select_star():
    statement = parse("SELECT * FROM items")
    assert isinstance(statement, Select)
    assert statement.is_star
    assert statement.table.name == "items"
    assert statement.where is None


def test_select_columns_with_aliases():
    statement = parse("SELECT id, name AS label FROM items")
    assert statement.items == (
        SelectItem("id", None),
        SelectItem("name", "label"),
    )
    assert statement.items[1].output_name == "label"


def test_select_where_equality_parameter():
    statement = parse("SELECT * FROM items WHERE category_id = ?")
    assert isinstance(statement.where, Comparison)
    assert statement.where.left == ColumnRef("category_id")
    assert statement.where.right == Parameter(0)


def test_select_where_and_or_precedence():
    statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
    assert isinstance(statement.where, Or)
    assert isinstance(statement.where.parts[1], And)


def test_select_where_not_and_parentheses():
    statement = parse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)")
    assert isinstance(statement.where, Not)
    assert isinstance(statement.where.part, Or)


def test_select_like():
    statement = parse("SELECT * FROM item WHERE name LIKE '%fish%'")
    assert isinstance(statement.where, Like)
    assert statement.where.pattern == Literal("%fish%")


def test_select_in_list():
    statement = parse("SELECT * FROM t WHERE id IN (1, 2, 3)")
    assert isinstance(statement.where, InList)
    assert len(statement.where.options) == 3


def test_select_order_by_and_limit():
    statement = parse("SELECT * FROM t ORDER BY price DESC LIMIT 10")
    assert statement.order_by.column == "price"
    assert statement.order_by.descending
    assert statement.limit == 10


def test_select_order_by_asc_default():
    statement = parse("SELECT * FROM t ORDER BY price")
    assert not statement.order_by.descending


def test_select_aggregates():
    statement = parse("SELECT COUNT(*) AS n, MAX(bid) FROM bids WHERE item_id = ?")
    assert statement.is_aggregate
    count, maximum = statement.items
    assert count == Aggregate("COUNT", None, "n")
    assert maximum == Aggregate("MAX", "bid", None)
    assert maximum.output_name == "max(bid)"


def test_select_join():
    statement = parse(
        "SELECT b.bid, u.nickname FROM bids b JOIN users u ON b.user_id = u.id "
        "WHERE b.item_id = ?"
    )
    assert statement.table.alias == "b"
    assert len(statement.joins) == 1
    join = statement.joins[0]
    assert join.table.binding == "u"
    assert (join.left_column, join.right_column) == ("b.user_id", "u.id")


def test_select_inner_join_keyword():
    statement = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y")
    assert len(statement.joins) == 1


def test_join_non_equality_rejected():
    with pytest.raises(SqlError):
        parse("SELECT * FROM a JOIN b ON a.x < b.y")


def test_string_literal_escaping():
    statement = parse("SELECT * FROM t WHERE name = 'it''s'")
    assert statement.where.right == Literal("it's")


def test_null_true_false_literals():
    statement = parse("SELECT * FROM t WHERE a = NULL OR b = TRUE OR c = FALSE")
    literals = [part.right.value for part in statement.where.parts]
    assert literals == [None, True, False]


def test_parameters_numbered_in_order():
    statement = parse("SELECT * FROM t WHERE a = ? AND b = ?")
    params = [part.right for part in statement.where.parts]
    assert params == [Parameter(0), Parameter(1)]


# ---------------------------------------------------------------------------
# INSERT / UPDATE / DELETE
# ---------------------------------------------------------------------------


def test_insert():
    statement = parse("INSERT INTO t (id, name) VALUES (?, 'x')")
    assert isinstance(statement, Insert)
    assert statement.columns == ("id", "name")
    assert statement.values == (Parameter(0), Literal("x"))


def test_insert_count_mismatch_rejected():
    with pytest.raises(SqlError):
        parse("INSERT INTO t (id, name) VALUES (1)")


def test_update():
    statement = parse("UPDATE t SET a = 1, b = ? WHERE id = ?")
    assert isinstance(statement, Update)
    assert statement.assignments == (("a", Literal(1)), ("b", Parameter(0)))
    assert statement.where.right == Parameter(1)


def test_delete():
    statement = parse("DELETE FROM t WHERE id = 5")
    assert isinstance(statement, Delete)
    assert statement.where.right == Literal(5)


def test_delete_without_where():
    statement = parse("DELETE FROM t")
    assert statement.where is None


# ---------------------------------------------------------------------------
# Errors and caching
# ---------------------------------------------------------------------------


def test_unsupported_statement_rejected():
    with pytest.raises(SqlError):
        parse("CREATE TABLE t (id INTEGER)")


def test_trailing_tokens_rejected():
    with pytest.raises(SqlError):
        parse("SELECT * FROM t garbage garbage")


def test_unexpected_character_rejected():
    with pytest.raises(SqlError):
        parse("SELECT * FROM t WHERE a = #")


def test_keywords_case_insensitive():
    statement = parse("select * from t where a = 1 order by a desc limit 1")
    assert isinstance(statement, Select)
    assert statement.limit == 1


def test_parse_cached_returns_same_ast():
    first = parse_cached("SELECT * FROM cache_me WHERE id = ?")
    second = parse_cached("SELECT * FROM cache_me WHERE id = ?")
    assert first is second


def test_float_literals():
    statement = parse("SELECT * FROM t WHERE price >= 10.5")
    assert statement.where.right == Literal(10.5)
    assert statement.where.operator == ">="


def test_not_equal_variants():
    for operator in ("!=", "<>"):
        statement = parse(f"SELECT * FROM t WHERE a {operator} 1")
        assert statement.where.operator == "!="
