"""Unit tests for column types and table schemas."""

import pytest

from repro.rdbms.schema import Column, ForeignKey, SchemaError, TableSchema
from repro.rdbms.types import BOOLEAN, FLOAT, INTEGER, TEXT, TypeError_, coerce


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def test_integer_accepts_ints_and_integral_floats():
    assert INTEGER.validate(5) == 5
    assert INTEGER.validate(5.0) == 5


def test_integer_rejects_bools_and_text():
    with pytest.raises(TypeError_):
        INTEGER.validate(True)
    with pytest.raises(TypeError_):
        INTEGER.validate("5")
    with pytest.raises(TypeError_):
        INTEGER.validate(5.5)


def test_float_accepts_numbers():
    assert FLOAT.validate(5) == 5.0
    assert isinstance(FLOAT.validate(5), float)


def test_float_rejects_bool():
    with pytest.raises(TypeError_):
        FLOAT.validate(False)


def test_text_and_boolean():
    assert TEXT.validate("hello") == "hello"
    assert BOOLEAN.validate(True) is True
    with pytest.raises(TypeError_):
        TEXT.validate(1)
    with pytest.raises(TypeError_):
        BOOLEAN.validate(1)


def test_size_of_scales_with_text_length():
    assert TEXT.size_of("abcd") == 4
    assert INTEGER.size_of(10**12) == 8


def test_coerce_null_handling():
    assert coerce(TEXT, None, nullable=True) is None
    with pytest.raises(TypeError_):
        coerce(TEXT, None, nullable=False)


def test_types_equality():
    assert INTEGER == INTEGER
    assert INTEGER != TEXT
    assert hash(INTEGER) == hash(INTEGER)


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


def _schema(**kwargs):
    defaults = dict(
        name="t",
        columns=[
            Column("id", INTEGER),
            Column("name", TEXT),
            Column("score", FLOAT, nullable=True),
        ],
        primary_key="id",
    )
    defaults.update(kwargs)
    return TableSchema(**defaults)


def test_schema_basics():
    schema = _schema(indexes=["name"])
    assert schema.column_names() == ["id", "name", "score"]
    assert schema.indexes == ["name"]
    assert schema.has_column("score")
    assert not schema.has_column("missing")


def test_schema_rejects_duplicate_columns():
    with pytest.raises(SchemaError):
        TableSchema("t", [Column("a", TEXT), Column("a", TEXT)], primary_key="a")


def test_schema_rejects_missing_primary_key():
    with pytest.raises(SchemaError):
        _schema(primary_key="nope")


def test_schema_rejects_unknown_index():
    with pytest.raises(SchemaError):
        _schema(indexes=["nope"])


def test_schema_rejects_empty_columns():
    with pytest.raises(SchemaError):
        TableSchema("t", [], primary_key="id")


def test_primary_key_not_duplicated_in_indexes():
    schema = _schema(indexes=["id", "name"])
    assert schema.indexes == ["name"]


def test_foreign_key_column_must_exist():
    with pytest.raises(SchemaError):
        _schema(foreign_keys=[ForeignKey("nope", "other", "id")])


def test_normalize_row_applies_defaults_and_validation():
    schema = TableSchema(
        "t",
        [Column("id", INTEGER), Column("flag", TEXT, default="off")],
        primary_key="id",
    )
    row = schema.normalize_row({"id": 1})
    assert row == {"id": 1, "flag": "off"}


def test_normalize_row_rejects_unknown_columns():
    with pytest.raises(SchemaError):
        _schema().normalize_row({"id": 1, "name": "x", "bogus": 2})


def test_normalize_row_rejects_bad_types():
    with pytest.raises(SchemaError):
        _schema().normalize_row({"id": "not-an-int", "name": "x"})


def test_row_size_estimation():
    schema = _schema()
    small = schema.row_size({"id": 1, "name": "a", "score": None})
    large = schema.row_size({"id": 1, "name": "a" * 100, "score": 1.0})
    assert large > small
