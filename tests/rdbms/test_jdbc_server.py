"""Unit tests for the database server and the JDBC access model."""

import pytest

from repro.rdbms.engine import Database
from repro.rdbms.jdbc import DataSource, JdbcConfig, JdbcError
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.server import DatabaseServer, DbCostModel, result_wire_size
from repro.rdbms.types import INTEGER, TEXT
from tests.helpers import run_process


@pytest.fixture
def db():
    database = Database("jdbc-test")
    database.create_table(
        TableSchema(
            "rows",
            [Column("id", INTEGER), Column("payload", TEXT)],
            primary_key="id",
        )
    )
    for i in range(60):
        database.execute(
            "INSERT INTO rows (id, payload) VALUES (?, ?)", (i, "x" * 50)
        )
    return database


@pytest.fixture
def server(env, network, db):
    return DatabaseServer(env, network.node("c"), db)


def _source(network, server, node="a", **config):
    return DataSource(network, node, server, JdbcConfig(**config))


def test_first_connect_pays_handshake_and_auth(env, network, server):
    source = _source(network, server)

    def proc():
        connection = yield from source.connect()
        connection.close()
        return env.now

    # a->c via b: 105 ms one-way.  Handshake (2x) + auth (2x) = ~420 ms.
    elapsed = run_process(env, proc())
    assert elapsed == pytest.approx(4 * 105.0, rel=0.05)
    assert source.connections_opened == 1


def test_pooled_reconnect_is_free(env, network, server):
    source = _source(network, server)

    def proc():
        first = yield from source.connect()
        first.close()
        start = env.now
        second = yield from source.connect()
        second.close()
        return env.now - start

    assert run_process(env, proc()) == 0.0
    assert source.connections_opened == 1


def test_unpooled_always_reopens(env, network, server):
    source = _source(network, server, pooled=False)

    def proc():
        for _ in range(2):
            connection = yield from source.connect()
            connection.close()

    run_process(env, proc())
    assert source.connections_opened == 2


def test_statement_costs_one_round_trip(env, network, server):
    source = _source(network, server)

    def proc():
        connection = yield from source.connect()
        start = env.now
        result = yield from connection.execute("SELECT * FROM rows WHERE id = ?", (1,))
        connection.close()
        return env.now - start, len(result.rows)

    elapsed, count = run_process(env, proc())
    assert count == 1
    assert elapsed == pytest.approx(2 * 105.0, rel=0.1)


def test_large_result_traversal_costs_extra_round_trips(env, network, server):
    source = _source(network, server, fetch_size=20)

    def timed(sql):
        def proc():
            connection = yield from source.connect()
            start = env.now
            yield from connection.execute(sql)
            connection.close()
            return env.now - start

        return proc

    small = run_process(env, timed("SELECT * FROM rows WHERE id = 1")())
    env2_elapsed = run_process(env, timed("SELECT * FROM rows")())
    # 60 rows at fetch_size 20: two extra fetch round trips.
    assert env2_elapsed > small + 2 * 2 * 100.0 * 0.9


def test_execute_on_closed_connection_rejected(env, network, server):
    source = _source(network, server)

    def proc():
        connection = yield from source.connect()
        connection.close()
        yield from connection.execute("SELECT * FROM rows WHERE id = 1")

    with pytest.raises(JdbcError):
        run_process(env, proc())


def test_close_with_open_transaction_rejected(env, network, server):
    source = _source(network, server)

    def proc():
        connection = yield from source.connect()
        connection.begin()
        yield from connection.execute(
            "UPDATE rows SET payload = 'y' WHERE id = 1"
        )
        connection.close()

    with pytest.raises(JdbcError):
        run_process(env, proc())


def test_transaction_commit_releases_and_persists(env, network, server, db):
    source = _source(network, server)

    def proc():
        connection = yield from source.connect()
        connection.begin()
        yield from connection.execute("UPDATE rows SET payload = 'z' WHERE id = 5")
        yield from connection.commit()
        connection.close()

    run_process(env, proc())
    assert db.execute("SELECT payload FROM rows WHERE id = 5").scalar() == "z"
    assert server.commits >= 1


def test_transaction_rollback_reverts(env, network, server, db):
    source = _source(network, server)

    def proc():
        connection = yield from source.connect()
        connection.begin()
        yield from connection.execute("UPDATE rows SET payload = 'gone' WHERE id = 6")
        yield from connection.rollback()
        connection.close()

    run_process(env, proc())
    assert db.execute("SELECT payload FROM rows WHERE id = 6").scalar() == "x" * 50
    assert server.rollbacks == 1


def test_write_locks_block_concurrent_writers(env, network, server, db):
    source_a = _source(network, server, node="a")
    source_b = _source(network, server, node="b")
    finish = {}

    def writer(name, source, hold):
        def proc():
            connection = yield from source.connect()
            connection.begin()
            yield from connection.execute(
                "UPDATE rows SET payload = ? WHERE id = 10", (name,)
            )
            yield env.timeout(hold)
            yield from connection.commit()
            connection.close()
            finish[name] = env.now

        return proc

    env.process(writer("first", source_a, 500.0)())
    env.process(writer("second", source_b, 0.0)())
    env.run()
    # One writer blocked on the other's row lock ("second", on the closer
    # node, wins the race; "first" then holds for 500 ms, delaying nobody,
    # but had to wait for second's commit before its UPDATE could run).
    assert server.locks.waits >= 1
    winner = min(finish, key=finish.get)
    loser = max(finish, key=finish.get)
    assert finish[loser] > finish[winner] + 400.0
    # The last committer's value is the durable one.
    assert db.execute("SELECT payload FROM rows WHERE id = 10").scalar() == loser


def test_db_cost_model_execution_time_scales():
    model = DbCostModel(statement_overhead=1.0, per_row_scanned=0.01, per_result_row=0.1)
    from repro.rdbms.executor import ResultSet

    small = model.execution_time(ResultSet([], [], rows_scanned=10), is_write=False)
    large = model.execution_time(
        ResultSet([], [{}] * 50, rows_scanned=1000), is_write=False
    )
    assert large > small


def test_result_wire_size_scales_with_rows():
    from repro.rdbms.executor import ResultSet

    small = result_wire_size(ResultSet(["a"], [{"a": "xx"}]))
    large = result_wire_size(ResultSet(["a"], [{"a": "xx" * 100}] * 10))
    assert large > small > 0
