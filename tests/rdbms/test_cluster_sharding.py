"""Statement routing and scatter-gather merging for the sharded tier.

Pinning is the correctness-critical path: a statement routed to the
wrong shard silently reads an empty partition, so these tests pin the
classifier's behaviour for every statement shape the middleware emits.
"""

import pytest

from repro.rdbms.cluster import (
    ClusterRoutingError,
    DataTierPolicy,
    Partitioner,
    merge_results,
    route_statement,
)
from repro.rdbms.executor import ResultSet

TIER = DataTierPolicy(
    shard_count=3,
    shard_tables=(("bids", "item_id"), ("items", "id")),
    global_tables=("regions",),
    replication_factor=1,
)
PART = Partitioner(TIER)


def _route(sql, params=()):
    return route_statement(sql, params, TIER, PART)


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------


def test_hash_partitioner_is_stable_and_in_range():
    # crc32 of the canonical string form: process-independent, so the
    # same key maps to the same shard in every worker of a --jobs N run.
    for value in (1, 7, "7", 12345, "abc"):
        first = PART.shard_of(value)
        assert first == PART.shard_of(value)
        assert 0 <= first < TIER.shard_count
    assert PART.shard_of(7) == PART.shard_of("7")


def test_single_shard_partitioner_always_zero():
    single = Partitioner(DataTierPolicy())
    assert single.shard_of(99) == 0


def test_range_partitioner_uses_ascending_splits():
    tier = DataTierPolicy(
        shard_count=3,
        shard_tables=(("items", "id"),),
        strategy="range",
        range_splits=(100, 200),
    )
    part = Partitioner(tier)
    assert part.shard_of(5) == 0
    assert part.shard_of(150) == 1
    assert part.shard_of(200) == 1  # splits are upper bounds (bisect_left)
    assert part.shard_of(999) == 2


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def test_select_with_shard_key_equality_pins():
    route = _route("SELECT * FROM items WHERE id = ?", (7,))
    assert route.kind == "single"
    assert route.shard == PART.shard_of(7)
    assert not route.is_write


def test_select_on_foreign_shard_key_pins_too():
    route = _route("SELECT * FROM bids WHERE item_id = ?", (7,))
    assert route.kind == "single"
    # bids colocate with their item: same key value, same shard.
    assert route.shard == PART.shard_of(7)


def test_unpinned_select_scatters():
    route = _route("SELECT * FROM items WHERE quantity > ?", (0,))
    assert route.kind == "scatter"
    assert not route.is_write


def test_global_table_read_routes_to_shard_zero():
    route = _route("SELECT * FROM regions WHERE id = ?", (1,))
    assert route.kind == "single"
    assert route.shard == 0
    assert route.sharded_tables == ()


def test_global_table_write_broadcasts():
    route = _route("UPDATE regions SET name = ? WHERE id = ?", ("x", 1))
    assert route.kind == "broadcast"
    assert route.is_write


def test_unpinned_write_on_sharded_table_broadcasts():
    route = _route("UPDATE items SET quantity = ? WHERE end_date < ?", (0, 10))
    assert route.kind == "broadcast"
    assert route.is_write


def test_insert_pins_by_shard_key_value():
    route = _route(
        "INSERT INTO items (id, name) VALUES (?, ?)", (42, "thing")
    )
    assert route.kind == "single"
    assert route.shard == PART.shard_of(42)
    assert route.is_write


def test_insert_without_shard_key_is_rejected():
    with pytest.raises(ClusterRoutingError):
        _route("INSERT INTO items (name) VALUES (?)", ("thing",))


def test_delete_with_shard_key_pins():
    route = _route("DELETE FROM bids WHERE item_id = ?", (7,))
    assert route.kind == "single"
    assert route.shard == PART.shard_of(7)


# ---------------------------------------------------------------------------
# Scatter-gather merging
# ---------------------------------------------------------------------------


def _rs(rows, scanned=1):
    columns = list(rows[0]) if rows else []
    return ResultSet(columns=columns, rows=rows, rows_scanned=scanned)


def test_merge_concatenates_sorts_and_limits():
    merged = merge_results(
        "SELECT id FROM items WHERE quantity > ? ORDER BY id DESC LIMIT 3",
        [_rs([{"id": 1}, {"id": 5}]), _rs([{"id": 9}]), _rs([{"id": 3}])],
    )
    assert [row["id"] for row in merged.rows] == [9, 5, 3]
    assert merged.rows_scanned == 3


def test_merge_count_and_sum_fold_across_shards():
    merged = merge_results(
        "SELECT COUNT(*) AS n FROM items",
        [_rs([{"n": 2}]), _rs([{"n": 0}]), _rs([{"n": 5}])],
    )
    assert merged.rows == [{"n": 7}]
    merged = merge_results(
        "SELECT MAX(bid) AS top FROM bids",
        [_rs([{"top": 10}]), _rs([{"top": None}]), _rs([{"top": 40}])],
    )
    assert merged.rows == [{"top": 40}]


def test_merge_count_of_no_rows_is_zero():
    merged = merge_results("SELECT COUNT(*) AS n FROM items", [_rs([]), _rs([])])
    assert merged.rows == [{"n": 0}]


def test_cross_shard_group_by_is_rejected():
    with pytest.raises(ClusterRoutingError):
        merge_results(
            "SELECT category, COUNT(*) AS n FROM items GROUP BY category",
            [_rs([])],
        )


def test_merge_broadcast_write_totals_affected():
    first = ResultSet(columns=[], rows=[], rows_scanned=4, affected=2)
    second = ResultSet(columns=[], rows=[], rows_scanned=1, affected=1)
    merged = merge_results("UPDATE items SET quantity = 0", [first, second])
    assert merged.affected == 3
    assert merged.rows_scanned == 5
