"""Tests for the cost-based planner: path choice, EXPLAIN, counters, caches."""

import pytest

from repro.rdbms.engine import Database
from repro.rdbms.lru import LruCache
from repro.rdbms.plan import AccessChoice, choose_path
from repro.rdbms.schema import Column, TableSchema
from repro.rdbms.stats import TableStats
from repro.rdbms.types import FLOAT, INTEGER, TEXT


@pytest.fixture
def db():
    database = Database("plans")
    database.create_table(
        TableSchema(
            "items",
            [
                Column("id", INTEGER),
                Column("name", TEXT),
                Column("price", FLOAT),
                Column("category", INTEGER),
            ],
            primary_key="id",
            indexes=["category", "price", "name"],
        )
    )
    for i in range(300):
        database.execute(
            "INSERT INTO items (id, name, price, category) VALUES (?, ?, ?, ?)",
            (i, f"gadget{i:03d}", float(i), i % 5),
        )
    return database


def _counters(db):
    e = db.executor
    return {
        "index": e.index_scans,
        "full": e.full_scans,
        "range": e.range_scans,
        "prefix": e.prefix_scans,
    }


def _delta(before, after):
    return {k: after[k] - before[k] for k in before}


# -- access-path choice -------------------------------------------------------

def test_range_predicate_uses_ordered_index(db):
    before = _counters(db)
    result = db.execute("SELECT id FROM items WHERE price >= ? AND price < ?", (10.0, 20.0))
    assert sorted(result.column("id")) == list(range(10, 20))
    assert result.used_index == "items.price"
    assert result.rows_scanned == 10
    assert _delta(before, _counters(db)) == {"index": 1, "full": 0, "range": 1, "prefix": 0}
    assert result.plan.root.op == "index-range"


def test_between_routes_through_range_index(db):
    result = db.execute("SELECT id FROM items WHERE price BETWEEN ? AND ?", (50.0, 59.0))
    assert sorted(result.column("id")) == list(range(50, 60))
    assert result.used_index == "items.price"
    assert result.plan.root.op == "index-range"


def test_between_nested_under_and_still_flattens(db):
    result = db.execute(
        "SELECT id FROM items WHERE category = ? AND price BETWEEN ? AND ?",
        (0, 0.0, 49.0),
    )
    assert sorted(result.column("id")) == [0, 5, 10, 15, 20, 25, 30, 35, 40, 45]
    # Either path is index-backed; the residual predicate keeps it exact.
    assert result.used_index in ("items.price", "items.category")


def test_prefix_like_uses_ordered_text_index(db):
    before = _counters(db)
    result = db.execute("SELECT id FROM items WHERE name LIKE ?", ("gadget00%",))
    assert sorted(result.column("id")) == list(range(10))
    assert result.used_index == "items.name"
    assert result.rows_scanned == 10
    assert _delta(before, _counters(db)) == {"index": 1, "full": 0, "range": 0, "prefix": 1}
    assert result.plan.root.op == "index-prefix"


def test_prefix_like_is_case_insensitive(db):
    result = db.execute("SELECT id FROM items WHERE name LIKE ?", ("GADGET00%",))
    assert sorted(result.column("id")) == list(range(10))
    assert result.used_index == "items.name"


def test_interior_wildcard_like_stays_full_scan(db):
    before = _counters(db)
    result = db.execute("SELECT id FROM items WHERE name LIKE ?", ("%42%",))
    assert result.used_index is None
    assert result.rows_scanned == 300
    assert _delta(before, _counters(db)) == {"index": 0, "full": 1, "range": 0, "prefix": 0}
    assert result.plan.root.op == "full-scan"


def test_text_column_never_serves_range_predicates(db):
    # name's ordered index is casefolded; a range over it must full-scan.
    result = db.execute("SELECT id FROM items WHERE name > ?", ("gadget100",))
    assert result.used_index is None
    assert result.plan.root.op == "full-scan"
    assert sorted(result.column("id")) == list(range(101, 300))


def test_equality_still_wins_on_empty_table():
    db = Database("empty")
    db.create_table(
        TableSchema(
            "t",
            [Column("id", INTEGER), Column("grp", INTEGER)],
            primary_key="id",
            indexes=["grp"],
        )
    )
    result = db.execute("SELECT id FROM t WHERE grp = ?", (1,))
    # Both candidates estimate zero cost; rank breaks the tie toward the
    # index probe, preserving the legacy rows_scanned floor of 1.
    assert result.used_index == "t.grp"
    assert result.rows_scanned == 1


def test_planner_picks_cheaper_of_eq_and_range(db):
    # category = 3 matches ~60 rows; price > 297 matches 2. Range wins.
    result = db.execute(
        "SELECT id FROM items WHERE category = ? AND price > ?", (3, 297.0)
    )
    assert result.used_index == "items.price"
    assert sorted(result.column("id")) == [298]
    # category = 3 matches ~60 rows; price > 5 matches ~294. Equality wins.
    result = db.execute(
        "SELECT id FROM items WHERE category = ? AND price > ?", (3, 5.0)
    )
    assert result.used_index == "items.category"


def test_force_full_scans_knob(db):
    db.executor.force_full_scans = True
    result = db.execute("SELECT id FROM items WHERE category = ?", (1,))
    assert result.used_index is None
    assert result.rows_scanned == 300
    assert result.plan.root.op == "full-scan"
    db.executor.force_full_scans = False
    result = db.execute("SELECT id FROM items WHERE category = ?", (1,))
    assert result.used_index == "items.category"


def test_update_and_delete_route_through_planner(db):
    result = db.execute("UPDATE items SET category = ? WHERE price BETWEEN ? AND ?", (9, 10.0, 12.0))
    assert result.affected == 3
    assert result.used_index == "items.price"
    assert result.plan.statement_kind == "update"
    result = db.execute("DELETE FROM items WHERE price > ?", (296.5,))
    assert result.affected == 3
    assert result.used_index == "items.price"
    assert result.plan.statement_kind == "delete"


# -- EXPLAIN ------------------------------------------------------------------

def test_explain_renders_chosen_and_rejected_paths(db):
    plan = db.explain("SELECT id FROM items WHERE price < ?", (5.0,))
    text = plan.render()
    assert "QUERY PLAN (select)" in text
    assert "IndexRange items" in text
    assert "rejected: FullScan items" in text
    assert "est_blocks=" in text and "est_records=" in text


def test_explain_does_not_execute_or_bump_counters(db):
    before = _counters(db)
    rows_before = len(db.execute("SELECT id FROM items").rows)
    _counters(db)  # the SELECT above bumped full_scans; resample baseline
    before = _counters(db)
    db.explain("SELECT id FROM items WHERE category = ?", (1,))
    db.explain("DELETE FROM items WHERE price > ?", (100.0,))
    assert _delta(before, _counters(db)) == {"index": 0, "full": 0, "range": 0, "prefix": 0}
    assert len(db.execute("SELECT id FROM items").rows) == rows_before


def test_explain_join_builds_nested_loop_tree(db):
    db.create_table(
        TableSchema(
            "cats",
            [Column("id", INTEGER), Column("label", TEXT)],
            primary_key="id",
        )
    )
    for i in range(5):
        db.execute("INSERT INTO cats (id, label) VALUES (?, ?)", (i, f"c{i}"))
    plan = db.explain(
        "SELECT items.id, c.label FROM items JOIN cats c ON items.category = c.id "
        "WHERE items.category = ?",
        (2,),
    )
    assert plan.root.op == "nested-loop-join"
    leaf_ops = [node.op for node in plan.access_paths()]
    assert "index-eq" in leaf_ops


def test_explain_insert_is_trivial(db):
    plan = db.explain(
        "INSERT INTO items (id, name, price, category) VALUES (?, ?, ?, ?)",
        (999, "x", 1.0, 1),
    )
    assert plan.statement_kind == "insert"
    assert plan.root.op == "insert"


def test_result_set_explain_text(db):
    result = db.execute("SELECT id FROM items WHERE category = ?", (1,))
    assert "IndexEq items.category" in result.explain()


# -- counters match planner choices (issue checklist) -------------------------

def test_counters_match_chosen_plans(db):
    e = db.executor
    base = (e.index_scans, e.full_scans, e.range_scans, e.prefix_scans)
    queries = [
        ("SELECT id FROM items WHERE category = ?", (1,)),
        ("SELECT id FROM items WHERE price BETWEEN ? AND ?", (1.0, 3.0)),
        ("SELECT id FROM items WHERE name LIKE ?", ("gadget1%",)),
        ("SELECT id FROM items WHERE name LIKE ?", ("%dget%",)),
        ("SELECT id FROM items", ()),
    ]
    expected = {"index-eq": 0, "index-range": 0, "index-prefix": 0, "full-scan": 0}
    for sql, params in queries:
        result = db.execute(sql, params)
        expected[result.plan.root.op] += 1
    assert e.index_scans - base[0] == (
        expected["index-eq"] + expected["index-range"] + expected["index-prefix"]
    )
    assert e.full_scans - base[1] == expected["full-scan"]
    assert e.range_scans - base[2] == expected["index-range"]
    assert e.prefix_scans - base[3] == expected["index-prefix"]


# -- cost primitives ----------------------------------------------------------

def test_table_stats_reads_live_structures(db):
    stats = TableStats(db.table("items"))
    assert stats.row_count == 300
    assert stats.distinct_values("category") == 5
    assert stats.equality_records("category") == 60
    assert stats.distinct_values("id") == 300
    assert stats.min_max("price") == (0.0, 299.0)
    assert 0 < stats.range_records("price", 0.0, 29.9) <= 31
    assert stats.table_blocks() >= stats.blocks_for(60)


def test_choose_path_prefers_blocks_then_records_then_rank():
    eq = AccessChoice("index-eq", "t", "a", "", 2, 10)
    rng = AccessChoice("index-range", "t", "b", "", 2, 10)
    full = AccessChoice("full-scan", "t", None, "", 2, 10)
    assert choose_path([full, rng, eq]) is eq  # rank breaks the three-way tie
    cheaper = AccessChoice("full-scan", "t", None, "", 1, 100)
    assert choose_path([eq, cheaper]) is cheaper  # blocks dominate


# -- LRU caches (issue checklist: admit after churn) --------------------------

def test_lru_cache_evicts_and_keeps_admitting():
    cache = LruCache(4)
    for i in range(10):
        cache.put(i, i * 10)
    assert len(cache) == 4
    assert cache.get(0) is None  # evicted
    assert cache.get(9) == 90
    cache.put("fresh", 1)  # still admits at capacity
    assert cache.get("fresh") == 1
    assert len(cache) == 4


def test_lru_cache_get_refreshes_recency():
    cache = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # touch a: b becomes LRU
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3


def test_executor_plan_cache_admits_after_statement_churn(db):
    """Regression: the old module-global caches stopped admitting at 4096
    entries, so statement churn silently disabled plan caching forever."""
    executor = db.executor
    capacity = executor._scan_plans.capacity
    # Simulate heavy churn: saturate the cache with dead entries.
    for i in range(capacity + 50):
        executor._scan_plans.put(("churn", i), None)
    assert len(executor._scan_plans) == capacity
    result = db.execute("SELECT id FROM items WHERE category = ?", (2,))
    assert result.used_index == "items.category"  # fresh plan was admitted
    assert len(executor._scan_plans) == capacity  # evicted, not overflowed
    # And the new plan is actually cached: a second execution reuses it.
    result2 = db.execute("SELECT id FROM items WHERE category = ?", (3,))
    assert result2.used_index == "items.category"


def test_executor_caches_are_per_instance(db):
    other = Database("other")
    other.create_table(
        TableSchema("t", [Column("id", INTEGER)], primary_key="id")
    )
    assert db.executor._scan_plans is not other.executor._scan_plans
    assert db.executor._select_plans is not other.executor._select_plans
