"""Design-rule enforcement (§5): audit a good and a bad deployment.

The paper argues component models should *enforce* its design rules —
"an effective way to promote and enforce the use of the façade pattern
is to define façades as the only components that can be invoked by
remote clients".  This example audits RUBiS twice:

1. deployed correctly at the asynchronous-updates level — every rule
   passes;
2. deliberately mis-engineered — entity beans exposed remotely and a
   chatty page making three wide-area calls — and shows the checker
   (and the runtime) catching it.

Run:  python examples/design_rule_audit.py
"""

from repro.apps.rubis import build_application, populate_rubis
from repro.core import DesignRuleChecker, PatternLevel, distribute
from repro.core.rules import RuleReport
from repro.experiments import run_configuration
from repro.experiments.calibration import default_workload
from repro.middleware.rmi import AccessError
from repro.middleware.context import InvocationContext, RequestInfo
from repro.simnet import Environment, Streams, Trace, build_testbed
from repro.simnet.topology import TestbedConfig


def audit_good_deployment() -> RuleReport:
    print("=== 1. correctly engineered deployment (level 5) ===")
    result = run_configuration(
        "rubis",
        PatternLevel.ASYNC_UPDATES,
        workload=default_workload(duration_ms=60_000.0, warmup_ms=15_000.0),
        with_trace=True,
    )
    report = DesignRuleChecker(result.system, min_replica_hit_rate=0.3).check(
        result.trace
    )
    print(report.summary())
    print(f"  rules checked: {', '.join(report.checked_rules)}")
    for key, value in sorted(report.metrics.items()):
        if key.startswith("hit_rate"):
            print(f"  {key}: {value:.0%}")
    return report


def audit_bad_deployment() -> RuleReport:
    print("\n=== 2. deliberately mis-engineered deployment ===")
    streams = Streams(13)
    database, catalog = populate_rubis(streams)
    env = Environment()
    testbed = build_testbed(env, TestbedConfig(db_colocated=True))
    trace = Trace()
    application = build_application(PatternLevel.REMOTE_FACADE, catalog=catalog)
    # Mistake #1: expose the Item entity bean remotely (violates R1).
    application.components["RubisItem"].remote_interface = True
    system = distribute(
        env, testbed, application, PatternLevel.REMOTE_FACADE, database, trace=trace
    )

    # Mistake #2: a "page" that makes three fine-grained wide-area entity
    # calls instead of one façade call (violates R2) — now *possible*
    # because of mistake #1.
    edge = system.servers["edge1"]
    ctx = InvocationContext(
        env=env,
        server=edge,
        request=RequestInfo("Chatty Item", "demo", "s1", "client-edge1-0"),
        costs=edge.costs,
        trace=trace,
    )

    def chatty_page():
        home = yield from edge.lookup(ctx, "RubisItem")
        for method in ("get_details", "get_bid_summary", "get_details"):
            yield from home.entity(1).call(ctx, method)

    env.process(chatty_page())
    env.run()

    report = DesignRuleChecker(system).check(trace)
    print(report.summary())

    # Had the entity kept its local-only interface, the runtime itself
    # would have refused (the enforcement §5 recommends):
    application.components["RubisItem"].remote_interface = False
    edge.home_cache.invalidate()

    def rejected_page():
        home = yield from edge.lookup(ctx, "RubisItem")
        yield from home.entity(1).call(ctx, "get_details")

    process = env.process(rejected_page())
    try:
        env.run()
        print("  (unexpected: remote entity call was allowed)")
    except AccessError as error:
        print(f"  runtime enforcement: AccessError: {error}")
    return report


def main() -> None:
    good = audit_good_deployment()
    bad = audit_bad_deployment()
    assert good.ok and not bad.ok
    print(
        "\nThe checker passes the engineered deployment and pinpoints both "
        "mistakes in the broken one; with local-only entity interfaces the "
        "container refuses the bad call outright."
    )


if __name__ == "__main__":
    main()
