"""The paper's Pet Store study in miniature (§4, Table 6, Figure 7).

Applies the five configurations incrementally — exactly the paper's
methodology — and prints the per-page table and session-average figure
after a scaled-down run of each.  Expect a few seconds of wall-clock per
configuration, or pass ``--jobs N`` to run the five independent
configurations across N worker processes (the printed tables are
byte-identical either way).

Run:  python examples/petstore_wan_study.py [--duration SECONDS] [--jobs N]
"""

import argparse

from repro.core.patterns import PAPER_LEVELS, PATTERN_CATALOG, PatternLevel
from repro.experiments import build_figure, build_table, render_figure, render_table
from repro.experiments.calibration import default_workload
from repro.experiments.progress import ProgressReporter
from repro.experiments.runner import run_configuration, run_series


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=120.0,
                        help="simulated seconds per configuration")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, the default)")
    args = parser.parse_args()
    workload = default_workload(
        duration_ms=args.duration * 1000.0, warmup_ms=args.duration * 250.0
    )

    def announce(level):
        info = PATTERN_CATALOG[level]
        print(f"[{int(level)}/5] {info.name} (§{info.paper_section}): "
              f"adds {info.adds.split(';')[0]} ...")

    def describe(result):
        print(f"      remote browser {result.session_mean('remote-browser'):6.0f} ms | "
              f"remote buyer {result.session_mean('remote-buyer'):6.0f} ms | "
              f"({result.wall_seconds:.1f}s wall)")

    if args.jobs == 1:
        results = {}
        for level in PAPER_LEVELS:
            announce(level)
            results[level] = run_configuration("petstore", level, workload=workload)
            describe(results[level])
    else:
        progress = ProgressReporter(len(PAPER_LEVELS), label="configurations")
        results = run_series(
            "petstore", workload=workload, jobs=args.jobs, progress=progress
        )
        for level in PAPER_LEVELS:
            announce(level)
            describe(results[level])

    print()
    print(render_table(build_table(results)))
    print()
    print(render_figure(build_figure(results)))

    final = results[PatternLevel.ASYNC_UPDATES]
    baseline = results[PatternLevel.CENTRALIZED]
    speedup = (
        baseline.session_mean("remote-browser") / final.session_mean("remote-browser")
    )
    print(f"\nremote browsers end up {speedup:.1f}x faster than the centralized "
          "baseline — 'almost completely insulated from wide-area effects' (§4.6)")


if __name__ == "__main__":
    main()
