"""Mutable services: demand-driven dynamic redeployment (§1, §6).

The paper's long-term goal is a service that adapts its own deployment:
"specific 'hot' components can be replicated and/or redeployed on-demand
in new physical nodes in response to higher client loads".  This example
starts Pet Store at the remote-façade level (no replicas anywhere),
points remote browsers at an edge, and lets the
:class:`~repro.core.mutable.MutableServiceManager` watch the wide-area
traffic and deploy the Catalog façade — then measures the improvement.

Run:  python examples/mutable_redeployment.py
"""

from repro.apps.petstore import build_application, populate_petstore
from repro.core import MutableServiceManager, PatternLevel, distribute
from repro.middleware.web import WebRequest, http_get
from repro.simnet import Environment, Streams, Trace, build_testbed


def main() -> None:
    streams = Streams(7)
    database, catalog = populate_petstore(streams)
    env = Environment()
    testbed = build_testbed(env)
    trace = Trace()
    # Level 3 placement machinery, but start the Catalog façade main-only:
    # the deployer marked it edge-deployable yet did not pre-place it (an
    # edge_from_level above the running level), leaving the decision to
    # the runtime manager.
    application = build_application(PatternLevel.STATEFUL_CACHING)
    application.components["Catalog"].edge_from_level = 99
    system = distribute(
        env, testbed, application, PatternLevel.STATEFUL_CACHING, database,
        trace=trace,
    )
    system.warm_replicas()

    manager = MutableServiceManager(system, check_interval_ms=3_000.0, miss_threshold=5)
    env.process(manager.run(env))

    edge = system.servers["edge1"]
    item_latencies = []

    def browser():
        for index in range(40):
            request = WebRequest(
                page="Item",
                params={"item_id": catalog.item_ids[index % 50]},
                session_id="mutable-demo",
                client_node="client-edge1-0",
            )
            start = env.now
            yield from http_get(env, edge, request, client_group="remote")
            item_latencies.append((env.now, env.now - start))
            yield env.timeout(700.0)

    env.process(browser())
    env.run(until=40 * 800.0)
    manager.stop()
    env.run()

    print("Item page latency from the edge, over time:")
    for when, latency in item_latencies[::4]:
        marker = " <-- redeployment era" if any(
            a.time <= when for a in manager.actions
        ) else ""
        print(f"  t={when / 1000.0:6.1f}s  {latency:7.1f} ms{marker}")

    print("\nadaptation actions taken:")
    for action in manager.actions:
        print(
            f"  t={action.time / 1000.0:6.1f}s  deployed {action.kind} of "
            f"{action.component!r} on {action.server} ({action.reason})"
        )

    before = [l for t, l in item_latencies[:5]]
    after = [l for t, l in item_latencies[-5:]]
    print(
        f"\nmean Item latency: first 5 requests {sum(before) / len(before):.0f} ms"
        f" -> last 5 requests {sum(after) / len(after):.0f} ms"
    )


if __name__ == "__main__":
    main()
