"""Consistency under replication: blocking push vs asynchronous updates.

Drives the same bid through RUBiS at level 3 (synchronous zero-staleness
push, §4.3) and level 5 (asynchronous JMS updates, §4.5), and shows:

* what the *writer* pays (blocked vs immediate),
* what an edge reader sees immediately after the commit,
* when the replicas converge.

Run:  python examples/rubis_consistency.py
"""

from repro.apps.rubis import build_application, populate_rubis
from repro.core import PatternLevel, distribute
from repro.middleware.web import WebRequest, http_get
from repro.simnet import Environment, Streams, build_testbed
from repro.simnet.topology import TestbedConfig

ITEM_ID = 42


def build(level):
    streams = Streams(99)
    database, catalog = populate_rubis(streams)
    env = Environment()
    testbed = build_testbed(env, TestbedConfig(db_colocated=True))
    system = distribute(
        env, testbed, build_application(level, catalog=catalog), level, database
    )
    system.warm_replicas()
    return env, system, catalog


def run_scenario(level) -> None:
    env, system, catalog = build(level)
    edge = system.servers["edge1"]
    log = []

    def get(server, page, params, client, session="consistency"):
        request = WebRequest(page=page, params=dict(params), session_id=session,
                             client_node=client)
        response = yield from http_get(env, server, request)
        return response

    def bidder():
        # Bid from the main site: the write transaction runs on main.
        start = env.now
        response = yield from get(
            system.main, "Store Bid",
            {"user_id": 7, "item_id": ITEM_ID, "increment": 25.0},
            client="client-main-0",
        )
        log.append(("writer", f"Store Bid took {env.now - start:6.1f} ms, "
                              f"new price {response.data['amount']:.2f}"))
        committed.succeed(response.data["amount"])

    def edge_reader():
        amount = yield committed
        # Immediately after commit: what does the edge replica show?
        response = yield from get(
            edge, "Item", {"item_id": ITEM_ID}, client="client-edge1-0"
        )
        seen = response.data["summary"]["max_bid"]
        verdict = "FRESH" if seen == amount else f"stale ({seen:.2f})"
        log.append(("edge read +0 ms", verdict))
        yield env.timeout(500.0)
        response = yield from get(
            edge, "Item", {"item_id": ITEM_ID}, client="client-edge1-0",
            session="later",
        )
        seen = response.data["summary"]["max_bid"]
        verdict = "FRESH" if seen == amount else f"STILL STALE ({seen:.2f})"
        log.append(("edge read +500 ms", verdict))

    committed = env.event()
    env.process(bidder())
    env.process(edge_reader())
    env.run()

    from repro.core.patterns import level_name

    print(f"\n=== level {int(level)}: {level_name(level)} ===")
    for who, what in log:
        print(f"  {who:18s} {what}")


def main() -> None:
    print("Bidding on item", ITEM_ID, "and watching edge replicas ...")
    run_scenario(PatternLevel.STATEFUL_CACHING)   # §4.3: zero staleness
    run_scenario(PatternLevel.ASYNC_UPDATES)      # §4.5: eventual, fast writes
    print(
        "\nLevel 3 blocks the writer until every edge acknowledges (zero "
        "staleness); level 5 returns immediately and the first racing read "
        "may see the previous value until the JMS delivery lands."
    )


if __name__ == "__main__":
    main()
