"""Quickstart: deploy RUBiS across the WAN testbed and measure it.

Stands up the paper's testbed (one main server with the database, two
edge servers, 100 ms WAN), deploys RUBiS at the *query caching* level,
runs two simulated minutes of the paper's workload, and prints per-group
response times plus a design-rule report.

Run:  python examples/quickstart.py
"""

from repro.core import DesignRuleChecker, PatternLevel
from repro.experiments import run_configuration
from repro.experiments.calibration import default_workload


def main() -> None:
    print("deploying RUBiS at level 4 (query caching) on the WAN testbed ...")
    result = run_configuration(
        "rubis",
        PatternLevel.QUERY_CACHING,
        workload=default_workload(duration_ms=120_000.0, warmup_ms=30_000.0),
        with_trace=True,
    )

    print(f"\nsimulated 120 s of load in {result.wall_seconds:.1f} s wall-clock")
    print(f"served {result.generator.total_requests()} page requests "
          f"({result.generator.achieved_rate_per_s():.1f}/s)\n")

    print("session-average response times:")
    for group in result.groups():
        print(f"  {group:16s} {result.session_mean(group):7.1f} ms")

    print("\nper-page means for the remote browser:")
    monitor = result.monitor
    for page in monitor.pages("remote-browser"):
        stats = monitor.page_stats("remote-browser", page)
        print(f"  {page:20s} {stats.mean:7.1f} ms  (n={stats.count})")

    print("\nserver CPU utilization:")
    for name, utilization in result.system.utilization_report().items():
        print(f"  {name:12s} {utilization:.0%}")

    print("\ndesign-rule check (§5):")
    report = DesignRuleChecker(result.system, min_replica_hit_rate=0.3).check(
        result.trace
    )
    print(" ", report.summary().replace("\n", "\n  "))

    print("\ndeployment plan:")
    print(" ", result.system.plan.describe().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
